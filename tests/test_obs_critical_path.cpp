// Causal critical-path extraction: invariants on hand-crafted programs.
//
// The load-bearing property is exact accounting: compute + blackout +
// network + wait on the extracted chain equals the makespan to the
// nanosecond, for serial chains, cross-rank chains, and blackout-perturbed
// runs — and the direct kappa measured from two such paths matches the
// makespan-ratio definition on a case where both are known exactly.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "chksim/noise/noise.hpp"
#include "chksim/obs/attribution.hpp"
#include "chksim/obs/critical_path.hpp"
#include "chksim/obs/export.hpp"
#include "chksim/obs/metrics.hpp"
#include "chksim/sim/engine.hpp"
#include "chksim/workload/workloads.hpp"

namespace {

using namespace chksim;
using namespace chksim::literals;

sim::LogGOPSParams tiny_net() {
  sim::LogGOPSParams net;
  net.L = 100;
  net.o = 10;
  net.g = 20;
  net.G = 0.0;
  net.O = 0.0;
  net.S = 1024;
  return net;
}

/// Two ranks, one hop: rank 0 computes then sends; rank 1 receives then
/// computes. The makespan-defining chain must cross from rank 0 to rank 1.
sim::Program chain_program() {
  sim::Program p(2);
  const sim::OpRef c0 = p.calc(0, 1'000'000);
  const sim::OpRef s = p.send(0, 1, 64, 5);
  p.depends(c0, s);
  const sim::OpRef r = p.recv(1, 0, 64, 5);
  const sim::OpRef c1 = p.calc(1, 500'000);
  p.depends(r, c1);
  p.finalize();
  return p;
}

/// One working rank (plus an idle peer): three serial calcs. A blackout on
/// the worker extends the makespan by exactly its duration.
sim::Program serial_program() {
  sim::Program p(2);
  sim::OpRef prev = p.calc(0, 1'000'000);
  for (int i = 1; i < 3; ++i) {
    const sim::OpRef next = p.calc(0, 1'000'000);
    p.depends(prev, next);
    prev = next;
  }
  p.calc(1, 1000);
  p.finalize();
  return p;
}

sim::Program halo_program(int ranks, int iterations) {
  workload::StdParams params;
  params.ranks = ranks;
  params.iterations = iterations;
  params.compute = 100_us;
  params.bytes = 8_KiB;
  sim::Program p = workload::make_workload("halo3d", params);
  p.finalize();
  return p;
}

obs::CriticalPath trace_and_extract(const sim::Program& p, sim::EngineConfig cfg,
                                    sim::RunResult* result = nullptr) {
  obs::EventTracer tracer(p.ranks());
  cfg.trace = &tracer;
  const sim::RunResult r = sim::run_program(p, cfg);
  EXPECT_TRUE(r.completed);
  if (result != nullptr) *result = r;
  return obs::extract_critical_path(tracer);
}

TEST(CriticalPath, ChainSumsToMakespanExactly) {
  const sim::Program p = chain_program();
  sim::EngineConfig cfg;
  cfg.net = tiny_net();
  sim::RunResult r;
  const obs::CriticalPath cp = trace_and_extract(p, cfg, &r);

  ASSERT_TRUE(cp.valid) << cp.error;
  EXPECT_EQ(cp.makespan, r.makespan);
  // The whole point: every nanosecond of [0, makespan) is classified.
  EXPECT_EQ(cp.compute + cp.blackout + cp.network + cp.wait, cp.makespan);
  EXPECT_EQ(cp.classified(), cp.makespan);

  // The chain crosses the one rank boundary and visits both ranks.
  EXPECT_EQ(cp.hops, 1);
  EXPECT_EQ(cp.ranks_visited, 2);
  EXPECT_EQ(cp.blackout, 0);
  EXPECT_GT(cp.network, 0);
  // Compute on the path is exactly the two calcs (the send/recv ops carry
  // overhead `o` as their own work time, which also counts as compute).
  EXPECT_GE(cp.compute, 1'500'000);

  // Steps are chronological and non-overlapping in cause order.
  ASSERT_FALSE(cp.steps.empty());
  for (std::size_t i = 1; i < cp.steps.size(); ++i)
    EXPECT_GE(cp.steps[i].t0, cp.steps[i - 1].t0);
  // Terminal step ends at the makespan.
  EXPECT_EQ(cp.steps.back().t1, cp.makespan);
}

TEST(CriticalPath, BlackoutSegmentEqualsInjectedDuration) {
  const sim::Program p = serial_program();
  sim::EngineConfig cfg;
  cfg.net = tiny_net();
  sim::RunResult base_r;
  const obs::CriticalPath base = trace_and_extract(p, cfg, &base_r);
  ASSERT_TRUE(base.valid) << base.error;
  EXPECT_EQ(base.blackout, 0);

  const TimeNs dur = 700'000;
  const auto noise = noise::make_single_blackout(2, 0, {300'000, 300'000 + dur});
  cfg.blackouts = noise.get();
  sim::RunResult pert_r;
  const obs::CriticalPath pert = trace_and_extract(p, cfg, &pert_r);
  ASSERT_TRUE(pert.valid) << pert.error;

  // Serial compute: the outage shifts everything downstream by exactly its
  // duration, and the path charges it all to the blackout bucket.
  EXPECT_EQ(pert_r.makespan, base_r.makespan + dur);
  EXPECT_EQ(pert.blackout, dur);
  EXPECT_EQ(pert.compute, base.compute);
  EXPECT_EQ(pert.classified(), pert.makespan);

  // kappa both ways is exactly 1 here: one second of makespan per second of
  // single-rank blackout, with no compute shift between the two paths.
  EXPECT_DOUBLE_EQ(obs::direct_kappa(pert, base, dur), 1.0);
}

TEST(CriticalPath, HaloSumsToMakespanAndAgreesWithAttribution) {
  const sim::Program p = halo_program(8, 6);
  sim::EngineConfig cfg;
  cfg.net = tiny_net();

  obs::EventTracer tracer(8);
  cfg.trace = &tracer;
  const sim::RunResult r = sim::run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  const obs::CriticalPath cp = obs::extract_critical_path(tracer);
  const obs::WaitAttribution att = obs::attribute_waits(tracer);

  ASSERT_TRUE(cp.valid) << cp.error;
  ASSERT_TRUE(att.complete);
  EXPECT_EQ(cp.makespan, r.makespan);
  EXPECT_EQ(cp.classified(), cp.makespan);
  // No blackouts injected: both passes must agree that no wait time is
  // blackout-caused, directly or transitively.
  EXPECT_EQ(cp.blackout, 0);
  EXPECT_EQ(att.total.sender_blackout, 0);
  EXPECT_EQ(att.total.propagated, 0);

  // Per-rank shares partition the path totals.
  TimeNs per_rank_sum = 0;
  std::int64_t step_sum = 0;
  for (const obs::RankPathShare& share : cp.per_rank) {
    per_rank_sum += share.compute + share.blackout + share.network + share.wait;
    step_sum += share.steps;
  }
  EXPECT_EQ(per_rank_sum, cp.makespan);
  EXPECT_EQ(step_sum, static_cast<std::int64_t>(cp.steps.size()));
}

TEST(CriticalPath, BlackoutRunAgreesWithAttributionDirection) {
  const sim::Program p = halo_program(8, 6);
  sim::EngineConfig cfg;
  cfg.net = tiny_net();
  sim::RunResult base_r;
  const obs::CriticalPath base = trace_and_extract(p, cfg, &base_r);
  ASSERT_TRUE(base.valid) << base.error;

  // A blackout much longer than per-iteration slack: the victim's stall
  // must surface both in the attribution (blackout-caused waits appear) and
  // on the critical path (blackout segment > 0), and the two kappa
  // measurements must agree closely.
  const TimeNs dur = 2_ms;
  const TimeNs start = base_r.makespan / 3;
  const auto noise = noise::make_single_blackout(8, 3, {start, start + dur});
  cfg.blackouts = noise.get();

  obs::EventTracer tracer(8);
  cfg.trace = &tracer;
  const sim::RunResult r = sim::run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  const obs::CriticalPath pert = obs::extract_critical_path(tracer);
  const obs::WaitAttribution att = obs::attribute_waits(tracer);

  ASSERT_TRUE(pert.valid) << pert.error;
  EXPECT_EQ(pert.classified(), pert.makespan);
  EXPECT_GT(pert.blackout, 0);
  EXPECT_GT(att.total.sender_blackout + att.total.propagated, 0);

  const double kappa_model = static_cast<double>(r.makespan - base_r.makespan) /
                             static_cast<double>(dur);
  const double kappa_path = obs::direct_kappa(pert, base, dur);
  EXPECT_NEAR(kappa_path, kappa_model, 0.1 * kappa_model + 1e-9);
}

TEST(CriticalPath, JsonAndFlowTraceAreByteDeterministic) {
  const sim::Program p = halo_program(8, 4);
  sim::EngineConfig cfg;
  cfg.net = tiny_net();

  std::string json[2];
  std::string flow[2];
  for (int pass = 0; pass < 2; ++pass) {
    obs::EventTracer tracer(8);
    cfg.trace = &tracer;
    ASSERT_TRUE(sim::run_program(p, cfg).completed);
    const obs::CriticalPath cp = obs::extract_critical_path(tracer);
    ASSERT_TRUE(cp.valid) << cp.error;
    std::ostringstream js, fl;
    obs::write_critical_path_json(cp, js);
    obs::write_chrome_trace(tracer, fl, &cp);
    json[pass] = js.str();
    flow[pass] = fl.str();
  }
  EXPECT_EQ(json[0], json[1]);
  EXPECT_EQ(flow[0], flow[1]);
  // The stitched trace actually contains the flow events.
  EXPECT_NE(flow[0].find("\"cat\":\"critical_path\""), std::string::npos);
  EXPECT_NE(flow[0].find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(flow[0].find("\"ph\":\"f\""), std::string::npos);

  // And the default (unstitched) export is byte-identical to passing no
  // path — the golden-pinned format is untouched by the new overload.
  obs::EventTracer tracer(8);
  cfg.trace = &tracer;
  ASSERT_TRUE(sim::run_program(p, cfg).completed);
  std::ostringstream plain2, plain3;
  obs::write_chrome_trace(tracer, plain2);
  obs::write_chrome_trace(tracer, plain3, nullptr);
  EXPECT_EQ(plain2.str(), plain3.str());
  EXPECT_EQ(plain2.str().find("critical_path"), std::string::npos);
}

TEST(CriticalPath, BoundedTracerIsRejectedNotWrong) {
  const sim::Program p = halo_program(8, 8);
  sim::EngineConfig cfg;
  cfg.net = tiny_net();
  obs::EventTracer tracer(8, /*capacity_per_rank=*/16);  // will wrap
  cfg.trace = &tracer;
  ASSERT_TRUE(sim::run_program(p, cfg).completed);
  ASSERT_GT(tracer.dropped(), 0u);

  const obs::CriticalPath cp = obs::extract_critical_path(tracer);
  EXPECT_FALSE(cp.valid);
  EXPECT_NE(cp.error.find("dropped"), std::string::npos) << cp.error;
  EXPECT_EQ(cp.classified(), 0);

  // publish still works and reports validity as a gauge.
  obs::MetricsRegistry m;
  obs::publish_critical_path(cp, m);
  EXPECT_TRUE(m.has_gauge("critical_path.valid"));
  EXPECT_EQ(m.gauge("critical_path.valid"), 0.0);
}

TEST(CriticalPath, PublishedGaugesMatchStruct) {
  const sim::Program p = chain_program();
  sim::EngineConfig cfg;
  cfg.net = tiny_net();
  const obs::CriticalPath cp = trace_and_extract(p, cfg);
  ASSERT_TRUE(cp.valid) << cp.error;

  obs::MetricsRegistry m;
  obs::publish_critical_path(cp, m);
  EXPECT_EQ(m.gauge("critical_path.valid"), 1.0);
  EXPECT_EQ(m.gauge("critical_path.makespan_ns"), static_cast<double>(cp.makespan));
  EXPECT_EQ(m.gauge("critical_path.compute_ns"), static_cast<double>(cp.compute));
  EXPECT_EQ(m.gauge("critical_path.network_ns"), static_cast<double>(cp.network));
  EXPECT_EQ(m.gauge("critical_path.hops"), static_cast<double>(cp.hops));
  EXPECT_EQ(m.gauge("critical_path.steps"), static_cast<double>(cp.steps.size()));
}

}  // namespace
