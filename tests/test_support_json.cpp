// Tests for the strict JSON reader/writer, including a rejection corpus of
// malformed documents (every entry must throw, never half-parse).
#include "chksim/support/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace chksim::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, IntegerIdentitySurvivesRoundTrip) {
  const Value v = parse("{\"big\": 9007199254740993, \"neg\": -123}");
  ASSERT_TRUE(v.find("big")->is_integer());
  EXPECT_EQ(v.find("big")->as_int(), 9007199254740993LL);  // not a double
  EXPECT_EQ(v.dump(), "{\"big\": 9007199254740993, \"neg\": -123}");
  EXPECT_EQ(parse(v.dump()), v);
}

TEST(Json, WholeDoublesCanonicaliseToIntegers) {
  // 4.0 and 4 must hash identically in canonical specs.
  EXPECT_EQ(Value::number(4.0).dump(), "4");
  EXPECT_EQ(parse("4.0").dump(), "4");
  EXPECT_EQ(parse("1e2").dump(), "100");
  EXPECT_EQ(parse("0.1").dump(), "0.1");
}

TEST(Json, DumpSortsKeysAndIsStable) {
  const Value v = parse("{\"b\": 1, \"a\": {\"z\": [1, 2.5, \"x\"], \"y\": null}}");
  EXPECT_EQ(v.dump(), "{\"a\": {\"y\": null, \"z\": [1, 2.5, \"x\"]}, \"b\": 1}");
  EXPECT_EQ(parse(v.dump()).dump(), v.dump());
}

TEST(Json, PrettyDumpRoundTrips) {
  const Value v = parse("{\"a\": [1, {\"b\": true}], \"c\": \"s\"}");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse(pretty), v);
}

TEST(Json, EscapesDecodeAndReencode) {
  const Value v = parse("\"a\\nb\\t\\\"q\\\\\\u0041\\u00e9\\ud83d\\ude00\"");
  EXPECT_EQ(v.as_string(), "a\nb\t\"q\\A\xc3\xa9\xf0\x9f\x98\x80");
  EXPECT_EQ(parse(v.dump()), v);
}

TEST(Json, FormatNumberShortestRoundTrip) {
  for (const double d : {0.1, 1.0 / 3.0, 6.02214076e23, -2.5e-8, 1e308}) {
    const std::string s = format_number(d);
    EXPECT_EQ(std::stod(s), d) << s;
  }
  EXPECT_EQ(format_number(0.1), "0.1");
  EXPECT_EQ(format_number(100.0), "100");
}

TEST(Json, RejectionCorpus) {
  const std::vector<std::string> bad = {
      "",                        // empty document
      "  ",                      // only whitespace
      "tru",                     // truncated literal
      "nulll",                   // trailing characters in literal
      "1 2",                     // trailing garbage after value
      "{\"a\": 1,}",             // trailing comma
      "[1, 2,]",                 // trailing comma in array
      "{'a': 1}",                // single quotes
      "{a: 1}",                  // unquoted key
      "{\"a\": 1 \"b\": 2}",     // missing comma
      "{\"a\": 1, \"a\": 2}",    // duplicate key
      "{\"a\"}",                 // key without value
      "[1, , 2]",                // elision
      "01",                      // leading zero
      "-01",                     // leading zero, negative
      "1.",                      // fraction without digits
      ".5",                      // no integer part
      "1e",                      // exponent without digits
      "+1",                      // leading plus
      "NaN", "Infinity", "-Infinity",
      "1e999",                   // overflows double
      "\"ab",                    // unterminated string
      "\"a\\x\"",                // unknown escape
      "\"a\\u12\"",              // short \u escape
      "\"\\ud800\"",             // lone high surrogate
      "\"\\ude00\"",             // lone low surrogate
      std::string("\"a\x01b\""), // raw control character
      "\"\xc0\xaf\"",            // overlong UTF-8
      "\"\xed\xa0\x80\"",        // UTF-8-encoded surrogate
      "\"\xf4\x90\x80\x80\"",    // > U+10FFFF
      "\"\xff\"",                // invalid UTF-8 byte
      "{\"a\": }",               // missing value
      "[",                       // unterminated array
      "{\"a\": [1, 2}",          // mismatched close
  };
  for (const std::string& text : bad) {
    EXPECT_THROW(parse(text), ParseError) << "accepted: " << text;
    Value out;
    std::string error;
    EXPECT_FALSE(try_parse(text, &out, &error));
    EXPECT_FALSE(error.empty());
  }
}

TEST(Json, DepthCapIsEnforced) {
  std::string deep_ok(kMaxDepth, '['), deep_bad(kMaxDepth + 1, '[');
  deep_ok += "1";
  deep_ok += std::string(kMaxDepth, ']');
  deep_bad += "1";
  deep_bad += std::string(kMaxDepth + 1, ']');
  EXPECT_NO_THROW(parse(deep_ok));
  EXPECT_THROW(parse(deep_bad), ParseError);
}

TEST(Json, ParseErrorReportsPosition) {
  try {
    parse("{\n  \"a\": tru\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_GT(e.column(), 1);
  }
}

TEST(Json, TypeErrorsThrow) {
  const Value v = parse("{\"a\": 1.5}");
  EXPECT_THROW(v.as_string(), TypeError);
  EXPECT_THROW(v.as_array(), TypeError);
  EXPECT_THROW(v.find("a")->as_int(), TypeError);  // 1.5 is not integral
  EXPECT_EQ(v.find("missing"), nullptr);
}

}  // namespace
}  // namespace chksim::json
