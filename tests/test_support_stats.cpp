// Tests for streaming statistics, percentiles, histograms, tables, units.
#include <gtest/gtest.h>

#include <cmath>

#include "chksim/support/stats.hpp"
#include "chksim/support/table.hpp"
#include "chksim/support/units.hpp"

namespace chksim {
namespace {

using namespace chksim::literals;

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(StreamingStats, SingleSample) {
  StreamingStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);           // population
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeMatchesSequential) {
  StreamingStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10 + i;
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1);
  b.merge(a);
  EXPECT_EQ(b.count(), 1);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Percentile, MedianOfOdd) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Percentile, InterpolatesBetweenSamples) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.5), 5.0);
}

TEST(Percentile, Extremes) {
  std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, EmptyIsZero) { EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0); }

TEST(Summary, OfBatch) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const Summary s = Summary::of(v);
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_GT(s.p99, s.p95);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(Histogram, BinsAndOutliers) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1);    // underflow
  h.add(0.0);   // bin 0
  h.add(9.99);  // bin 9
  h.add(10.0);  // overflow (hi is exclusive)
  h.add(5.5);   // bin 5
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.bin_count(0), 1);
  EXPECT_EQ(h.bin_count(9), 1);
  EXPECT_EQ(h.bin_count(5), 1);
  EXPECT_EQ(h.total(), 5);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 20.0);
}

TEST(Table, AsciiRendering) {
  Table t({"a", "bb"});
  t.row() << "x" << 1.5;
  t.row() << std::int64_t{42} << "y";
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("| a  | bb  |"), std::string::npos);
  EXPECT_NE(ascii.find("42"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.at(0, 1), "1.5");
}

TEST(Table, CsvEscaping) {
  Table t({"h"});
  t.row() << "a,b";
  t.row() << "q\"uote";
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"uote\""), std::string::npos);
}

TEST(Table, JsonOutput) {
  Table t({"name", "value"});
  t.row() << "alpha" << 1.5;
  t.row() << "be\"ta" << "not-a-number";
  const std::string json = t.to_json();
  EXPECT_NE(json.find("{\"name\": \"alpha\", \"value\": 1.5}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"be\\\"ta\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"not-a-number\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
}

TEST(Table, JsonEmptyTable) {
  Table t({"a"});
  EXPECT_EQ(t.to_json(), "[\n]\n");
}

TEST(Units, Conversions) {
  EXPECT_EQ(1_s, 1000000000);
  EXPECT_EQ(2_ms, 2000000);
  EXPECT_EQ(3_us, 3000);
  EXPECT_EQ(1_MiB, 1048576);
  EXPECT_EQ(units::from_seconds(1.5), 1500000000);
  EXPECT_DOUBLE_EQ(units::to_seconds(2500000000), 2.5);
  EXPECT_EQ(units::from_seconds(units::to_seconds(123456789)), 123456789);
}

TEST(Units, Formatting) {
  EXPECT_EQ(units::format_time(500), "500 ns");
  EXPECT_EQ(units::format_time(1500), "1.5 us");
  EXPECT_EQ(units::format_time(2000000), "2 ms");
  EXPECT_EQ(units::format_time(-3000000000), "-3 s");
  EXPECT_EQ(units::format_bytes(512), "512 B");
  EXPECT_EQ(units::format_bytes(2048), "2 KiB");
}

}  // namespace
}  // namespace chksim
