// Randomized property tests for the engine: generated programs with
// matched communication and random DAGs, checked against model invariants.
#include <gtest/gtest.h>

#include "chksim/sim/engine.hpp"
#include "chksim/support/rng.hpp"

namespace chksim::sim {
namespace {

struct GeneratedProgram {
  Program program;
  int ranks;
};

/// Random valid program: every send has a matching recv (same tag), and all
/// intra-rank dependencies point backwards (acyclic by construction).
GeneratedProgram generate(std::uint64_t seed, int ranks, int ops_per_rank) {
  Rng rng(seed);
  Program p(ranks);
  std::vector<std::vector<OpRef>> ops(static_cast<std::size_t>(ranks));

  // Phase 1: local computation ops.
  for (RankId r = 0; r < ranks; ++r) {
    const int calcs = 1 + static_cast<int>(rng.uniform_u64(
                              static_cast<std::uint64_t>(ops_per_rank)));
    for (int i = 0; i < calcs; ++i) {
      ops[static_cast<std::size_t>(r)].push_back(
          p.calc(r, static_cast<TimeNs>(rng.uniform_u64(5000))));
    }
  }
  // Phase 2: matched communication.
  const int messages = ranks * ops_per_rank / 2;
  for (int m = 0; m < messages; ++m) {
    const auto src = static_cast<RankId>(rng.uniform_u64(static_cast<std::uint64_t>(ranks)));
    auto dst = static_cast<RankId>(rng.uniform_u64(static_cast<std::uint64_t>(ranks)));
    if (dst == src) dst = (dst + 1) % ranks;
    if (ranks < 2) break;
    const Tag tag = p.allocate_tags();
    const Bytes bytes = static_cast<Bytes>(rng.uniform_u64(100'000));
    ops[static_cast<std::size_t>(src)].push_back(p.send(src, dst, bytes, tag));
    ops[static_cast<std::size_t>(dst)].push_back(p.recv(dst, src, bytes, tag));
  }
  // Phase 3: random backward dependencies (acyclic), ~1.5 edges per op.
  for (RankId r = 0; r < ranks; ++r) {
    auto& list = ops[static_cast<std::size_t>(r)];
    for (std::size_t i = 1; i < list.size(); ++i) {
      const int edges = static_cast<int>(rng.uniform_u64(3));
      for (int e = 0; e < edges; ++e) {
        const auto j = static_cast<std::size_t>(rng.uniform_u64(i));
        p.depends(list[j], list[i]);
      }
    }
  }
  return {std::move(p), ranks};
}

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, InvariantsHold) {
  const std::uint64_t seed = GetParam();
  Rng shape_rng(seed ^ 0xfeed);
  const int ranks = 2 + static_cast<int>(shape_rng.uniform_u64(14));
  const int ops_per_rank = 4 + static_cast<int>(shape_rng.uniform_u64(12));
  GeneratedProgram g = generate(seed, ranks, ops_per_rank);
  const ProgramStats st = g.program.finalize();
  ASSERT_TRUE(g.program.check_matching().empty());

  EngineConfig cfg;
  cfg.net.L = 2000;
  cfg.net.o = 150;
  cfg.net.g = 300;
  cfg.net.G = 0.1;
  cfg.net.S = 50'000;  // mixed eager/rendezvous
  cfg.record_op_finish = true;

  const RunResult r = run_program(g.program, cfg);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.ops_executed, st.ops);

  // Invariant 1: determinism.
  const RunResult r2 = run_program(g.program, cfg);
  EXPECT_EQ(r.makespan, r2.makespan);
  EXPECT_EQ(r.events_processed, r2.events_processed);

  // Invariant 2: happens-before respected (every op finishes no earlier
  // than each of its intra-rank predecessors).
  for (RankId rank = 0; rank < g.ranks; ++rank) {
    const RankOpsView v = g.program.rank_view(rank);
    const OpFinishView finish = r.op_finish_of(rank);
    for (OpIndex i = 0; i < v.count; ++i) {
      ASSERT_GE(finish[i], 0) << "op never finished";
      v.for_each_successor(i, [&](OpIndex to) {
        ASSERT_GE(finish[to], finish[i]) << "dependency order violated";
      });
    }
  }

  // Invariant 3: per-rank CPU-work lower bound on the makespan.
  for (const RankStats& rs : r.ranks)
    ASSERT_GE(r.makespan, rs.cpu_busy - 1);

  // Invariant 4: makespan below a fully-serialized upper bound.
  TimeNs upper = 0;
  for (RankId rank = 0; rank < g.ranks; ++rank) {
    const RankOpsView v = g.program.rank_view(rank);
    for (OpIndex i = 0; i < v.count; ++i) {
      const OpView op = v.op(i);
      switch (op.kind) {
        case OpKind::kCalc:
          upper += op.value;
          break;
        case OpKind::kSend:
        case OpKind::kRecv:
          upper += cfg.net.send_cpu(op.value) + cfg.net.wire_time(op.value) +
                   cfg.net.nic_gap(op.value) + 4 * cfg.net.control_time();
          break;
      }
    }
  }
  EXPECT_LE(r.makespan, upper);

  // Perturbed runs. Note that "more perturbation => longer makespan" is NOT
  // a theorem on a multi-resource DAG schedule (Graham's scheduling
  // anomalies: delaying one op can reorder downstream contention and
  // shorten the whole run), so we assert only sound properties: completion,
  // determinism, happens-before, and work conservation.
  PeriodicBlackouts noise(50'000, 5'000, TimeNs{1234});
  EngineConfig noisy = cfg;
  noisy.blackouts = &noise;
  noisy.record_op_finish = true;
  const RunResult rn = run_program(g.program, noisy);
  ASSERT_TRUE(rn.completed) << rn.error;
  EXPECT_EQ(rn.ops_executed, st.ops);
  EXPECT_EQ(run_program(g.program, noisy).makespan, rn.makespan);
  for (RankId rank = 0; rank < g.ranks; ++rank) {
    const RankOpsView v = g.program.rank_view(rank);
    const OpFinishView finish = rn.op_finish_of(rank);
    for (OpIndex i = 0; i < v.count; ++i)
      v.for_each_successor(i,
                           [&](OpIndex to) { ASSERT_GE(finish[to], finish[i]); });
  }

  // Work conservation under a message tax: per-rank CPU busy time grows by
  // exactly tax * sends (the makespan itself may move either way).
  class Flat final : public SendTax {
   public:
    TimeNs extra_send_cpu(RankId, RankId, Bytes) const override { return 500; }
  } tax;
  EngineConfig taxed = cfg;
  taxed.tax = &tax;
  const RunResult rt = run_program(g.program, taxed);
  ASSERT_TRUE(rt.completed);
  for (int rank = 0; rank < g.ranks; ++rank) {
    const auto& a = r.ranks[static_cast<std::size_t>(rank)];
    const auto& b = rt.ranks[static_cast<std::size_t>(rank)];
    ASSERT_EQ(b.cpu_busy - a.cpu_busy, 500 * a.sends);
    ASSERT_EQ(a.sends, b.sends);
    ASSERT_EQ(a.bytes_sent, b.bytes_sent);
  }

  // Non-preemptive blackouts also complete deterministically.
  EngineConfig nonpre = noisy;
  nonpre.preemption = Preemption::kNonPreemptive;
  const RunResult rp = run_program(g.program, nonpre);
  ASSERT_TRUE(rp.completed);
  EXPECT_EQ(run_program(g.program, nonpre).makespan, rp.makespan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

// Focused property: recv completion is never before the send's completion
// plus wire latency (eager case).
class CausalityFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CausalityFuzz, MessagesRespectLatency) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const int ranks = 4;
  Program p(ranks);
  struct Pair {
    OpRef send, recv;
    Bytes bytes;
  };
  std::vector<Pair> pairs;
  std::vector<OpRef> last(static_cast<std::size_t>(ranks));
  for (int m = 0; m < 30; ++m) {
    const auto src = static_cast<RankId>(rng.uniform_u64(4));
    auto dst = static_cast<RankId>(rng.uniform_u64(4));
    if (dst == src) dst = (dst + 1) % 4;
    const Tag tag = p.allocate_tags();
    const Bytes bytes = static_cast<Bytes>(rng.uniform_u64(8192));
    Pair pr;
    pr.bytes = bytes;
    pr.send = p.send(src, dst, bytes, tag);
    pr.recv = p.recv(dst, src, bytes, tag);
    // Serialize per rank to keep it simple.
    if (last[static_cast<std::size_t>(src)].valid())
      p.depends(last[static_cast<std::size_t>(src)], pr.send);
    if (last[static_cast<std::size_t>(dst)].valid() &&
        !(last[static_cast<std::size_t>(dst)] == pr.send))
      p.depends(last[static_cast<std::size_t>(dst)], pr.recv);
    last[static_cast<std::size_t>(src)] = pr.send;
    last[static_cast<std::size_t>(dst)] = pr.recv;
    pairs.push_back(pr);
  }
  p.finalize();
  EngineConfig cfg;
  cfg.net.L = 1000;
  cfg.net.o = 100;
  cfg.net.g = 0;
  cfg.net.G = 0.0;
  cfg.net.S = 1 << 30;
  cfg.record_op_finish = true;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed) << r.error;
  for (const auto& pr : pairs) {
    const TimeNs send_done =
        r.op_finish_of(static_cast<std::size_t>(pr.send.rank))[pr.send.index];
    const TimeNs recv_done =
        r.op_finish_of(static_cast<std::size_t>(pr.recv.rank))[pr.recv.index];
    // recv >= send completion + L + recv overhead.
    ASSERT_GE(recv_done, send_done + cfg.net.L + cfg.net.o);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CausalityFuzz,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace chksim::sim
