// Recovery (makespan-with-failures) model tests.
#include <gtest/gtest.h>

#include "chksim/analytic/daly.hpp"
#include "chksim/ckpt/recovery.hpp"

namespace chksim::ckpt {
namespace {

using namespace chksim::literals;

RecoveryParams base_params() {
  RecoveryParams p;
  p.kind = ProtocolKind::kCoordinated;
  p.work_seconds = 10'000;
  p.slowdown = 1.05;
  p.interval_seconds = 500;
  p.restart_seconds = 100;
  return p;
}

TEST(Recovery, NoFailuresGivesPerturbedTime) {
  const RecoveryParams p = base_params();
  // Astronomically large MTBF: no failures in practice.
  fault::Exponential dist(1e15);
  const MakespanResult r = simulate_makespan(p, dist, 10, 1);
  EXPECT_NEAR(r.mean_seconds, p.work_seconds * p.slowdown, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_failures, 0.0);
  EXPECT_NEAR(r.efficiency, 1.0 / p.slowdown, 1e-6);
  EXPECT_EQ(r.trials, 10);
}

TEST(Recovery, FailuresExtendMakespan) {
  const RecoveryParams p = base_params();
  fault::Exponential rare(1e15);
  fault::Exponential frequent(2000);
  const MakespanResult r0 = simulate_makespan(p, rare, 50, 1);
  const MakespanResult r1 = simulate_makespan(p, frequent, 50, 1);
  EXPECT_GT(r1.mean_seconds, r0.mean_seconds);
  EXPECT_GT(r1.mean_failures, 1.0);
  EXPECT_LT(r1.efficiency, r0.efficiency);
}

TEST(Recovery, CoordinatedLosesAtMostOneInterval) {
  // With zero restart cost, each failure costs at most tau of rework plus
  // the re-execution slowdown.
  RecoveryParams p = base_params();
  p.restart_seconds = 0;
  fault::Exponential dist(3000);
  const MakespanResult r = simulate_makespan(p, dist, 200, 7);
  const double max_extra_per_failure = p.interval_seconds * p.slowdown;
  EXPECT_LE(r.mean_seconds,
            p.work_seconds * p.slowdown + r.mean_failures * max_extra_per_failure + 1.0);
}

TEST(Recovery, UncoordinatedReplayBeatsCoordinatedRollbackAtEqualTax) {
  // Same parameters, same failure rate: replaying half an interval at 1.5x
  // speed beats losing half an interval of real rework on average when the
  // interval is large relative to restart.
  RecoveryParams co = base_params();
  co.interval_seconds = 2000;
  RecoveryParams un = co;
  un.kind = ProtocolKind::kUncoordinated;
  un.replay_speedup = 2.0;
  fault::Exponential dist(5000);
  const MakespanResult rc = simulate_makespan(co, dist, 400, 3);
  const MakespanResult ru = simulate_makespan(un, dist, 400, 3);
  EXPECT_LT(ru.mean_seconds, rc.mean_seconds);
}

TEST(Recovery, NoneProtocolRestartsFromScratch) {
  RecoveryParams p = base_params();
  p.kind = ProtocolKind::kNone;
  p.work_seconds = 1000;
  p.slowdown = 1.0;
  fault::Exponential dist(5000);
  const MakespanResult none = simulate_makespan(p, dist, 200, 5);
  RecoveryParams cp = p;
  cp.kind = ProtocolKind::kCoordinated;
  cp.interval_seconds = 100;
  cp.slowdown = 1.05;
  const MakespanResult ck = simulate_makespan(cp, dist, 200, 5);
  // With failures likely during a 1000 s run, checkpointing wins despite
  // its 5% overhead.
  EXPECT_LT(ck.mean_seconds, none.mean_seconds);
}

TEST(Recovery, DeterministicInSeed) {
  const RecoveryParams p = base_params();
  fault::Exponential dist(2000);
  const MakespanResult a = simulate_makespan(p, dist, 50, 11);
  const MakespanResult b = simulate_makespan(p, dist, 50, 11);
  EXPECT_DOUBLE_EQ(a.mean_seconds, b.mean_seconds);
  const MakespanResult c = simulate_makespan(p, dist, 50, 12);
  EXPECT_NE(a.mean_seconds, c.mean_seconds);
}

TEST(Recovery, ValidatesParameters) {
  fault::Exponential dist(1000);
  RecoveryParams p = base_params();
  p.work_seconds = 0;
  EXPECT_THROW(simulate_makespan(p, dist, 10, 1), std::invalid_argument);
  p = base_params();
  p.slowdown = 0.5;
  EXPECT_THROW(simulate_makespan(p, dist, 10, 1), std::invalid_argument);
  p = base_params();
  p.interval_seconds = 0;
  EXPECT_THROW(simulate_makespan(p, dist, 10, 1), std::invalid_argument);
  p = base_params();
  EXPECT_THROW(simulate_makespan(p, dist, 0, 1), std::invalid_argument);
  p.replay_speedup = 0.5;
  EXPECT_THROW(simulate_makespan(p, dist, 10, 1), std::invalid_argument);
}

TEST(Recovery, AgainstExplicitTrace) {
  RecoveryParams p = base_params();
  p.slowdown = 1.0;
  p.interval_seconds = 100;
  p.restart_seconds = 50;
  p.work_seconds = 1000;
  // One failure at t=250: rollback to the t=200 commit (losing 50 s of
  // work), pay 50 s restart. Completion: at failure, w=250; w->200;
  // t=250+50=300; remaining 800 -> 1100.
  const std::vector<fault::Failure> trace = {{250_s, 0}};
  const double mk = makespan_against_trace(p, trace, 1);
  EXPECT_NEAR(mk, 1100.0, 1e-6);
}

TEST(Recovery, TraceFailureAfterCompletionIsIgnored) {
  RecoveryParams p = base_params();
  p.slowdown = 1.0;
  p.work_seconds = 100;
  const std::vector<fault::Failure> trace = {{1000_s, 0}};
  EXPECT_NEAR(makespan_against_trace(p, trace, 1), 100.0, 1e-9);
}

TEST(Recovery, EmptyTraceIsFailureFree) {
  RecoveryParams p = base_params();
  EXPECT_NEAR(makespan_against_trace(p, {}, 1),
              p.work_seconds * p.slowdown, 1e-6);
}

TEST(Recovery, WeibullBurstsHurtMore) {
  // Same MTBF; Weibull shape 0.5 clusters failures, hurting coordinated
  // rollback (repeated rework) more than exponential.
  const RecoveryParams p = base_params();
  fault::Exponential ex(4000);
  fault::Weibull wb(4000, 0.5);
  const MakespanResult re = simulate_makespan(p, ex, 500, 21);
  const MakespanResult rw = simulate_makespan(p, wb, 500, 21);
  // Both see failures; the comparison is just sanity (no strict ordering
  // guarantee, but means should be in the same ballpark).
  EXPECT_GT(re.mean_failures, 0.5);
  EXPECT_GT(rw.mean_failures, 0.5);
  EXPECT_GT(rw.p95_seconds, rw.mean_seconds);
}

class RecoveryEfficiencySweep : public ::testing::TestWithParam<double> {};

// Property: simulated efficiency at Daly's interval is within a few percent
// of Daly's analytic efficiency prediction (cross-validation of the MC
// model against the closed form).
TEST_P(RecoveryEfficiencySweep, MatchesDalyAnalytic) {
  const double M = GetParam();
  const double delta = 60, R = 120;
  const double tau = analytic::daly_interval(delta, M);
  RecoveryParams p;
  p.kind = ProtocolKind::kCoordinated;
  p.work_seconds = 50'000;
  // Daly's model counts the checkpoint write as part of the cycle.
  p.slowdown = 1.0 + delta / tau;
  p.interval_seconds = tau;
  p.restart_seconds = R;
  fault::Exponential dist(M);
  const MakespanResult r = simulate_makespan(p, dist, 600, 17);
  const double daly = analytic::daly_efficiency(p.work_seconds, tau, delta, R, M);
  EXPECT_NEAR(r.efficiency, daly, 0.06) << "M=" << M;
}

INSTANTIATE_TEST_SUITE_P(Mtbfs, RecoveryEfficiencySweep,
                         ::testing::Values(3600.0, 7500.0, 20000.0, 100000.0));

}  // namespace
}  // namespace chksim::ckpt
