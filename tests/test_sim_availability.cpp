// Tests for blackout schedules and the availability calculator.
#include "chksim/sim/availability.hpp"

#include <gtest/gtest.h>

namespace chksim::sim {
namespace {

TEST(ListBlackouts, MergesOverlappingAndAbutting) {
  ListBlackouts bl({{{10, 20}, {15, 30}, {30, 40}, {50, 50}, {60, 70}}});
  const auto first = bl.next_blackout(0, 0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, (Interval{10, 40}));
  const auto second = bl.next_blackout(0, 40);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, (Interval{60, 70}));
  EXPECT_EQ(bl.total(0), 40);
}

TEST(ListBlackouts, NextIsFirstWithEndAfterT) {
  ListBlackouts bl({{{10, 20}, {30, 40}}});
  EXPECT_EQ(bl.next_blackout(0, 19)->begin, 10);
  EXPECT_EQ(bl.next_blackout(0, 20)->begin, 30);
  EXPECT_FALSE(bl.next_blackout(0, 40).has_value());
}

TEST(ListBlackouts, OutOfRangeRankHasNone) {
  ListBlackouts bl({{{10, 20}}});
  EXPECT_FALSE(bl.next_blackout(5, 0).has_value());
}

TEST(PeriodicBlackouts, BasicSequence) {
  PeriodicBlackouts bl(100, 10, TimeNs{0});
  EXPECT_EQ(*bl.next_blackout(0, 0), (Interval{0, 10}));
  EXPECT_EQ(*bl.next_blackout(0, 5), (Interval{0, 10}));
  EXPECT_EQ(*bl.next_blackout(0, 10), (Interval{100, 110}));
  EXPECT_EQ(*bl.next_blackout(0, 110), (Interval{200, 210}));
  EXPECT_EQ(*bl.next_blackout(0, 111), (Interval{200, 210}));
}

TEST(PeriodicBlackouts, PerRankPhases) {
  PeriodicBlackouts bl(100, 10, std::vector<TimeNs>{0, 50});
  EXPECT_EQ(bl.next_blackout(0, 0)->begin, 0);
  EXPECT_EQ(bl.next_blackout(1, 0)->begin, 50);
  EXPECT_EQ(bl.next_blackout(1, 61)->begin, 150);
}

TEST(PeriodicBlackouts, ActiveWindowClipsSchedule) {
  PeriodicBlackouts bl(100, 10, TimeNs{0});
  bl.set_active_window(150, 350);
  // First interval with start >= 150 is at 200.
  EXPECT_EQ(bl.next_blackout(0, 0)->begin, 200);
  EXPECT_EQ(bl.next_blackout(0, 210)->begin, 300);
  EXPECT_FALSE(bl.next_blackout(0, 310).has_value());
}

TEST(PeriodicBlackouts, ZeroDurationMeansNone) {
  PeriodicBlackouts bl(100, 0, TimeNs{0});
  EXPECT_FALSE(bl.next_blackout(0, 0).has_value());
}

TEST(UnionBlackouts, MergesParts) {
  PeriodicBlackouts a(1000, 100, TimeNs{0});    // [0,100), [1000,1100), ...
  PeriodicBlackouts b(1000, 100, TimeNs{50});   // [50,150), [1050,1150), ...
  UnionBlackouts u({&a, &b});
  const auto iv = u.next_blackout(0, 0);
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(*iv, (Interval{0, 150}));
  EXPECT_EQ(u.next_blackout(0, 150)->begin, 1000);
}

TEST(Availability, NextAvailableSkipsBlackout) {
  ListBlackouts bl({{{10, 20}}});
  Availability av(&bl, Preemption::kPreemptive);
  EXPECT_EQ(av.next_available(0, 5), 5);
  EXPECT_EQ(av.next_available(0, 10), 20);
  EXPECT_EQ(av.next_available(0, 19), 20);
  EXPECT_EQ(av.next_available(0, 20), 20);
}

TEST(Availability, NextAvailableAcrossAdjacentBlackouts) {
  ListBlackouts bl({{{10, 20}, {25, 30}}});
  Availability av(&bl, Preemption::kPreemptive);
  EXPECT_EQ(av.next_available(0, 12), 20);
  EXPECT_EQ(av.next_available(0, 26), 30);
}

TEST(Availability, PreemptiveFinishPausesAcrossBlackout) {
  ListBlackouts bl({{{50, 70}}});
  Availability av(&bl, Preemption::kPreemptive);
  // 100 ns of work from t=0: 50 before, pause 20, 50 after -> 120.
  EXPECT_EQ(av.finish(0, 0, 100), 120);
}

TEST(Availability, PreemptiveFinishAcrossMultipleBlackouts) {
  ListBlackouts bl({{{10, 20}, {30, 40}}});
  Availability av(&bl, Preemption::kPreemptive);
  // 25 ns from t=0: [0,10)=10, [20,30)=10, [40,45)=5 -> 45.
  EXPECT_EQ(av.finish(0, 0, 25), 45);
}

TEST(Availability, FinishExactlyAtBlackoutBoundary) {
  ListBlackouts bl({{{10, 20}}});
  Availability av(&bl, Preemption::kPreemptive);
  // Work that ends exactly where the blackout begins is unaffected.
  EXPECT_EQ(av.finish(0, 0, 10), 10);
}

TEST(Availability, FinishStartingInsideBlackout) {
  ListBlackouts bl({{{10, 20}}});
  Availability av(&bl, Preemption::kPreemptive);
  EXPECT_EQ(av.finish(0, 15, 5), 25);
}

TEST(Availability, ZeroWorkCompletesAtNextAvailable) {
  ListBlackouts bl({{{10, 20}}});
  Availability av(&bl, Preemption::kPreemptive);
  EXPECT_EQ(av.finish(0, 15, 0), 20);
  EXPECT_EQ(av.finish(0, 5, 0), 5);
}

TEST(Availability, NonPreemptiveWaitsForGap) {
  ListBlackouts bl({{{50, 70}, {100, 120}}});
  Availability av(&bl, Preemption::kNonPreemptive);
  // 60 ns of work: [0,50) too small, [70,100) too small, starts at 120.
  EXPECT_EQ(av.finish(0, 0, 60), 180);
  // 30 ns fits in [70,100).
  EXPECT_EQ(av.finish(0, 60, 30), 100);
}

TEST(Availability, NoBlackoutsIsIdentity) {
  NoBlackouts none;
  Availability av(&none, Preemption::kPreemptive);
  EXPECT_EQ(av.next_available(0, 123), 123);
  EXPECT_EQ(av.finish(0, 123, 77), 200);
}

class PeriodicFinishProperty
    : public ::testing::TestWithParam<std::tuple<TimeNs, TimeNs, TimeNs>> {};

// Property: preemptive finish time always equals start + work + stolen time,
// where stolen time is the blackout overlap of [start, finish).
TEST_P(PeriodicFinishProperty, ElapsedEqualsWorkPlusOverlap) {
  const auto [period, duration, work] = GetParam();
  PeriodicBlackouts bl(period, duration, TimeNs{0});
  Availability av(&bl, Preemption::kPreemptive);
  for (TimeNs t0 : {TimeNs{0}, TimeNs{3}, TimeNs{57}, TimeNs{999}}) {
    const TimeNs start = av.next_available(0, t0);
    const TimeNs end = av.finish(0, t0, work);
    // Compute blackout overlap of [start, end) by walking the schedule.
    TimeNs overlap = 0;
    TimeNs cur = start;
    while (true) {
      const auto iv = bl.next_blackout(0, cur);
      if (!iv || iv->begin >= end) break;
      overlap += std::min(end, iv->end) - std::max(cur, iv->begin);
      cur = iv->end;
    }
    ASSERT_EQ(end - start, work + overlap)
        << "period=" << period << " dur=" << duration << " work=" << work
        << " t0=" << t0;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PeriodicFinishProperty,
    ::testing::Values(std::make_tuple(100, 10, 5), std::make_tuple(100, 10, 95),
                      std::make_tuple(100, 10, 1000), std::make_tuple(100, 99, 7),
                      std::make_tuple(64, 1, 640), std::make_tuple(1000, 500, 2501)));

}  // namespace
}  // namespace chksim::sim
