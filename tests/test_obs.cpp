// Observability layer: event tracing, exporters, metrics registry, and
// wait-state attribution.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "chksim/core/study.hpp"
#include "chksim/net/machines.hpp"
#include "chksim/noise/noise.hpp"
#include "chksim/obs/attribution.hpp"
#include "chksim/obs/export.hpp"
#include "chksim/obs/metrics.hpp"
#include "chksim/workload/workloads.hpp"

namespace {

using namespace chksim;
using namespace chksim::literals;

/// Smallest interesting program: rank 0 computes then sends; rank 1 receives
/// (and therefore waits).
sim::Program tiny_program() {
  sim::Program p(2);
  const sim::OpRef c = p.calc(0, 1000);
  const sim::OpRef s = p.send(0, 1, 64, 5);
  p.depends(c, s);
  p.recv(1, 0, 64, 5);
  p.finalize();
  return p;
}

sim::LogGOPSParams tiny_net() {
  sim::LogGOPSParams net;
  net.L = 100;
  net.o = 10;
  net.g = 20;
  net.G = 0.0;
  net.O = 0.0;
  net.S = 1024;
  return net;
}

sim::Program halo_program(int ranks, int iterations) {
  workload::StdParams params;
  params.ranks = ranks;
  params.iterations = iterations;
  params.compute = 1_ms;
  params.bytes = 8_KiB;
  sim::Program p = workload::make_workload("halo3d", params);
  p.finalize();
  return p;
}

TEST(EventTracer, RecordsCoreEventsInOrder) {
  const sim::Program p = tiny_program();
  sim::EngineConfig cfg;
  cfg.net = tiny_net();
  obs::EventTracer tracer(2);
  cfg.trace = &tracer;
  const sim::RunResult r = sim::run_program(p, cfg);
  ASSERT_TRUE(r.completed);

  const auto evs = tracer.events();
  ASSERT_EQ(evs.size(), tracer.recorded());
  EXPECT_EQ(tracer.dropped(), 0u);

  // seq is dense and ascending; one event of each expected kind shows up.
  int calc = 0, send = 0, recv = 0, inject = 0, deliver = 0, wait = 0;
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].seq, i + 1);
    switch (evs[i].kind) {
      case obs::TraceEventKind::kCalc: ++calc; break;
      case obs::TraceEventKind::kSendOp: ++send; break;
      case obs::TraceEventKind::kRecvOp: ++recv; break;
      case obs::TraceEventKind::kMsgInject: ++inject; break;
      case obs::TraceEventKind::kMsgDeliver: ++deliver; break;
      case obs::TraceEventKind::kRecvWait: ++wait; break;
      default: break;
    }
  }
  EXPECT_EQ(calc, 1);
  EXPECT_EQ(send, 1);
  EXPECT_EQ(recv, 1);
  EXPECT_EQ(inject, 1);
  EXPECT_EQ(deliver, 1);
  EXPECT_EQ(wait, 1);  // the recv posts at t=0, data arrives later

  // The wait interval matches the engine's accounting exactly.
  for (const auto& ev : evs) {
    if (ev.kind == obs::TraceEventKind::kRecvWait) {
      EXPECT_EQ(ev.t1 - ev.t0, r.ranks[1].recv_wait);
    }
  }
}

TEST(EventTracer, ZeroCostPathMatchesUntracedResults) {
  const sim::Program p = halo_program(27, 5);
  sim::EngineConfig cfg;
  cfg.net = net::infiniband_system().net;
  const sim::RunResult plain = sim::run_program(p, cfg);
  obs::EventTracer tracer(27);
  cfg.trace = &tracer;
  const sim::RunResult traced = sim::run_program(p, cfg);
  EXPECT_EQ(plain.makespan, traced.makespan);
  EXPECT_EQ(plain.ops_executed, traced.ops_executed);
  for (std::size_t r = 0; r < plain.ranks.size(); ++r) {
    EXPECT_EQ(plain.ranks[r].recv_wait, traced.ranks[r].recv_wait);
    EXPECT_EQ(plain.ranks[r].cpu_busy, traced.ranks[r].cpu_busy);
  }
}

TEST(EventTracer, RingBufferKeepsNewestAndCounts) {
  const sim::Program p = halo_program(8, 10);
  sim::EngineConfig cfg;
  cfg.net = net::infiniband_system().net;
  obs::EventTracer tracer(8, /*capacity_per_rank=*/16);
  cfg.trace = &tracer;
  (void)sim::run_program(p, cfg);
  EXPECT_GT(tracer.dropped(), 0u);
  const auto evs = tracer.events();
  EXPECT_LE(evs.size(), 8u * 16u);
  EXPECT_EQ(evs.size() + tracer.dropped(), tracer.recorded());
  // Per-rank events come back oldest-first with ascending seq.
  for (int r = 0; r < 8; ++r) {
    const auto rank_evs = tracer.rank_events(r);
    for (std::size_t i = 1; i < rank_evs.size(); ++i)
      EXPECT_LT(rank_evs[i - 1].seq, rank_evs[i].seq);
  }
}

TEST(TraceExport, DeterministicAcrossIdenticalRuns) {
  const sim::Program p = halo_program(27, 5);
  const auto noise = noise::make_single_blackout(27, 13, {2_ms, 4_ms});
  std::string json[2], csv[2];
  for (int i = 0; i < 2; ++i) {
    sim::EngineConfig cfg;
    cfg.net = net::infiniband_system().net;
    cfg.blackouts = noise.get();
    obs::EventTracer tracer(27);
    cfg.trace = &tracer;
    const sim::RunResult r = sim::run_program(p, cfg);
    ASSERT_TRUE(r.completed);
    std::ostringstream j, c;
    obs::write_chrome_trace(tracer, j);
    obs::write_trace_csv(tracer, c);
    json[i] = j.str();
    csv[i] = c.str();
  }
  EXPECT_EQ(json[0], json[1]);  // byte-identical
  EXPECT_EQ(csv[0], csv[1]);
}

// Golden-file check of the Chrome trace-event JSON structure: the tiny
// two-rank program under fixed LogGOPS parameters must export exactly this.
// Regenerate with tests --gtest_filter=TraceExport.ChromeTraceGolden after
// an intentional schema change (the failure message prints the actual).
TEST(TraceExport, ChromeTraceGolden) {
  const sim::Program p = tiny_program();
  sim::EngineConfig cfg;
  cfg.net = tiny_net();
  obs::EventTracer tracer(2);
  cfg.trace = &tracer;
  ASSERT_TRUE(sim::run_program(p, cfg).completed);
  std::ostringstream out;
  obs::write_chrome_trace(tracer, out);
  const std::string expected = R"GOLD({"displayTimeUnit":"ns","traceEvents":[
{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"ops"}},
{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"waits"}},
{"name":"process_name","ph":"M","pid":2,"tid":0,"args":{"name":"network"}},
{"name":"process_name","ph":"M","pid":3,"tid":0,"args":{"name":"blackouts"}},
{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"rank 0"}},
{"name":"thread_name","ph":"M","pid":0,"tid":1,"args":{"name":"rank 1"}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"rank 1"}},
{"name":"thread_name","ph":"M","pid":2,"tid":0,"args":{"name":"rank 0"}},
{"name":"thread_name","ph":"M","pid":2,"tid":1,"args":{"name":"rank 1"}},
{"name":"calc","ph":"X","ts":0.000,"dur":1.000,"pid":0,"tid":0,"args":{"seq":1,"op":0}},
{"name":"wait","ph":"X","ts":0.000,"dur":1.110,"pid":1,"tid":1,"args":{"seq":5,"ref":3,"peer":0,"op":0,"tag":5,"bytes":64}},
{"name":"send","ph":"X","ts":1.000,"dur":0.010,"pid":0,"tid":0,"args":{"seq":2,"peer":1,"op":1,"tag":5,"bytes":64}},
{"name":"inject","ph":"X","ts":1.010,"dur":0.100,"pid":2,"tid":0,"args":{"seq":3,"peer":1,"op":1,"tag":5,"bytes":64}},
{"name":"deliver","ph":"i","s":"t","ts":1.110,"pid":2,"tid":1,"args":{"seq":4,"ref":3,"peer":0,"op":0,"tag":5,"bytes":64}},
{"name":"recv","ph":"X","ts":1.110,"dur":0.010,"pid":0,"tid":1,"args":{"seq":6,"ref":3,"peer":0,"op":0,"tag":5,"bytes":64}}
]}
)GOLD";
  EXPECT_EQ(out.str(), expected);
}

TEST(TraceExport, ChromeTraceIsStructurallySoundOnRendezvous) {
  // A payload above the eager threshold exercises the RTS/CTS events.
  sim::Program p(2);
  const sim::OpRef s = p.send(0, 1, 1_MiB, 9);
  (void)s;
  p.recv(1, 0, 1_MiB, 9);
  p.finalize();
  sim::EngineConfig cfg;
  cfg.net = net::infiniband_system().net;
  obs::EventTracer tracer(2);
  cfg.trace = &tracer;
  ASSERT_TRUE(sim::run_program(p, cfg).completed);
  std::ostringstream out;
  obs::write_chrome_trace(tracer, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"rts\""), std::string::npos);
  EXPECT_NE(json.find("\"cts\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness probe; no string values
  // in the export contain braces).
  std::int64_t braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Attribution, AccountsForEveryNanosecondPerRank) {
  const int ranks = 64;
  const sim::Program p = halo_program(ranks, 10);
  sim::EngineConfig cfg;
  cfg.net = net::infiniband_system().net;
  const sim::RunResult base = sim::run_program(p, cfg);
  const auto noise = noise::make_single_blackout(
      ranks, ranks / 2, {base.makespan / 3, base.makespan / 3 + 5_ms});
  cfg.blackouts = noise.get();
  obs::EventTracer tracer(ranks);
  cfg.trace = &tracer;
  const sim::RunResult run = sim::run_program(p, cfg);
  ASSERT_TRUE(run.completed);

  const obs::WaitAttribution att = obs::attribute_waits(tracer);
  ASSERT_TRUE(att.complete);
  ASSERT_EQ(att.ranks.size(), static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    const obs::RankWaitAttribution& a = att.ranks[static_cast<std::size_t>(r)];
    // The invariant: the three categories partition recv_wait exactly, and
    // recv_wait matches the engine's own accounting.
    EXPECT_EQ(a.recv_wait, run.ranks[static_cast<std::size_t>(r)].recv_wait)
        << "rank " << r;
    EXPECT_EQ(a.sender_blackout + a.propagated + a.network, a.recv_wait)
        << "rank " << r;
    EXPECT_GE(a.sender_blackout, 0);
    EXPECT_GE(a.propagated, 0);
    EXPECT_GE(a.network, 0);
  }
  EXPECT_EQ(att.total.recv_wait, run.total_recv_wait());
  EXPECT_EQ(att.total.sender_blackout + att.total.propagated + att.total.network,
            att.total.recv_wait);
  // The blackout is visible: some wait is attributed to it, directly on the
  // victim's neighbours and transitively further out.
  EXPECT_GT(att.total.sender_blackout, 0);
  EXPECT_GT(att.total.propagated, 0);
}

TEST(Attribution, NoDelaysMeansEverythingIsNetwork) {
  const sim::Program p = halo_program(27, 5);
  sim::EngineConfig cfg;
  cfg.net = net::infiniband_system().net;
  obs::EventTracer tracer(27);
  cfg.trace = &tracer;
  const sim::RunResult run = sim::run_program(p, cfg);
  const obs::WaitAttribution att = obs::attribute_waits(tracer);
  EXPECT_EQ(att.total.sender_blackout, 0);
  EXPECT_EQ(att.total.propagated, 0);
  EXPECT_EQ(att.total.network, run.total_recv_wait());
  EXPECT_EQ(att.total.recv_wait, run.total_recv_wait());
}

TEST(Attribution, IncompleteWhenRingDropped) {
  const sim::Program p = halo_program(8, 10);
  sim::EngineConfig cfg;
  cfg.net = net::infiniband_system().net;
  obs::EventTracer tracer(8, /*capacity_per_rank=*/16);
  cfg.trace = &tracer;
  (void)sim::run_program(p, cfg);
  ASSERT_GT(tracer.dropped(), 0u);
  const obs::WaitAttribution att = obs::attribute_waits(tracer);
  EXPECT_FALSE(att.complete);
}

TEST(MetricsRegistry, CountersGaugesStatsHistograms) {
  obs::MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.add_counter("a.count");
  m.add_counter("a.count", 4);
  m.set_gauge("a.gauge", 2.5);
  m.set_gauge("a.gauge", 3.5);  // last write wins
  m.stats("a.stats").add(1.0);
  m.stats("a.stats").add(3.0);
  m.histogram("a.hist", 0, 10, 5).add(1.0);
  m.histogram("a.hist", 0, 99, 7).add(9.5);  // shape args ignored after creation

  EXPECT_EQ(m.counter("a.count"), 5);
  EXPECT_EQ(m.counter("missing"), 0);
  EXPECT_DOUBLE_EQ(m.gauge("a.gauge"), 3.5);
  EXPECT_TRUE(m.has_gauge("a.gauge"));
  EXPECT_FALSE(m.has_gauge("missing"));
  ASSERT_NE(m.find_stats("a.stats"), nullptr);
  EXPECT_EQ(m.find_stats("a.stats")->count(), 2);
  ASSERT_NE(m.find_histogram("a.hist"), nullptr);
  EXPECT_EQ(m.find_histogram("a.hist")->bins(), 5);
  EXPECT_EQ(m.find_histogram("a.hist")->total(), 2);
  EXPECT_FALSE(m.empty());

  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"a.count\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"a.gauge\": 3.5"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_EQ(json, m.to_json());  // stable

  m.clear();
  EXPECT_TRUE(m.empty());
}

TEST(MetricsRegistry, StudyPublishesBreakdownAndEngineTotals) {
  core::StudyConfig cfg;
  cfg.machine = net::infiniband_system();
  cfg.machine.ckpt_bytes_per_node = 4_MiB;
  cfg.workload = "halo3d";
  cfg.params.ranks = 27;
  cfg.params.iterations = 10;
  cfg.params.compute = 1_ms;
  cfg.params.bytes = 8_KiB;
  cfg.protocol.kind = ckpt::ProtocolKind::kCoordinated;
  cfg.protocol.fixed_interval = 20_ms;

  obs::MetricsRegistry m;
  obs::EventTracer tracer(cfg.params.ranks);
  cfg.metrics = &m;
  cfg.trace = &tracer;
  const core::Breakdown b = core::run_study(cfg);

  EXPECT_DOUBLE_EQ(m.gauge("study.slowdown"), b.slowdown);
  EXPECT_DOUBLE_EQ(m.gauge("study.duty_cycle"), b.duty_cycle);
  EXPECT_EQ(m.counter("study.ops"), b.ops);
  EXPECT_DOUBLE_EQ(m.gauge("engine.base.makespan_ns"),
                   static_cast<double>(b.base_makespan));
  EXPECT_DOUBLE_EQ(m.gauge("engine.perturbed.makespan_ns"),
                   static_cast<double>(b.perturbed_makespan));
  EXPECT_DOUBLE_EQ(m.gauge("engine.perturbed.total_recv_wait_ns"),
                   static_cast<double>(b.recv_wait_perturbed));
  ASSERT_NE(m.find_stats("engine.base.rank_cpu_busy_ns"), nullptr);
  EXPECT_EQ(m.find_stats("engine.base.rank_cpu_busy_ns")->count(), 27);
  // The traced perturbed run is attributable.
  const obs::WaitAttribution att = obs::attribute_waits(tracer);
  EXPECT_EQ(att.total.recv_wait, b.recv_wait_perturbed);
}

}  // namespace
