// Edge-case and regression tests for the engine and program layers.
#include <gtest/gtest.h>

#include "chksim/sim/engine.hpp"

namespace chksim::sim {
namespace {

EngineConfig net() {
  EngineConfig cfg;
  cfg.net.L = 1000;
  cfg.net.o = 100;
  cfg.net.g = 50;
  cfg.net.G = 0.0;
  cfg.net.S = 1 << 30;
  return cfg;
}

TEST(EngineEdge, EmptyProgramCompletesInstantly) {
  Program p(4);
  p.finalize();
  const RunResult r = run_program(p, net());
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 0);
  EXPECT_EQ(r.ops_executed, 0);
}

TEST(EngineEdge, SomeRanksEmpty) {
  Program p(4);
  p.calc(2, 500);
  p.finalize();
  const RunResult r = run_program(p, net());
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 500);
  EXPECT_EQ(r.ranks[0].finish_time, 0);
  EXPECT_EQ(r.ranks[2].finish_time, 500);
}

TEST(EngineEdge, ZeroDurationCalc) {
  Program p(1);
  const OpRef a = p.calc(0, 0);
  const OpRef b = p.calc(0, 0);
  p.depends(a, b);
  p.finalize();
  const RunResult r = run_program(p, net());
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 0);
}

TEST(EngineEdge, ZeroByteMessage) {
  Program p(2);
  p.send(0, 1, 0, 1);
  p.recv(1, 0, 0, 1);
  p.finalize();
  const RunResult r = run_program(p, net());
  ASSERT_TRUE(r.completed);
  // Pure control message: o + L + o.
  EXPECT_EQ(r.makespan, 1200);
}

TEST(EngineEdge, ManyMessagesOnOneChannelStayOrdered) {
  const int kMessages = 200;
  Program p(2);
  const Tag tag = p.allocate_tags();
  OpRef prev_s, prev_r;
  for (int i = 0; i < kMessages; ++i) {
    const OpRef s = p.send(0, 1, 8, tag);
    const OpRef rv = p.recv(1, 0, 8, tag);
    if (prev_s.valid()) p.depends(prev_s, s);
    if (prev_r.valid()) p.depends(prev_r, rv);
    prev_s = s;
    prev_r = rv;
  }
  p.finalize();
  EngineConfig cfg = net();
  cfg.record_op_finish = true;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  for (std::size_t i = 1; i < r.op_finish_of(1).size(); ++i)
    ASSERT_GT(r.op_finish_of(1)[i], r.op_finish_of(1)[i - 1]);
}

TEST(EngineEdge, LongSimulatedTimesDontOverflow) {
  // Hours of simulated compute in one op: ~10^13 ns, far under int64 range.
  Program p(1);
  const OpRef a = p.calc(0, 4 * 3'600'000'000'000LL);
  const OpRef b = p.calc(0, 4 * 3'600'000'000'000LL);
  p.depends(a, b);
  p.finalize();
  const RunResult r = run_program(p, net());
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 8 * 3'600'000'000'000LL);
}

TEST(EngineEdge, WideFanoutDependencies) {
  // One op with 500 dependents; all become ready simultaneously.
  Program p(1);
  const OpRef root = p.calc(0, 10);
  for (int i = 0; i < 500; ++i) {
    const OpRef leaf = p.calc(0, 1);
    p.depends(root, leaf);
  }
  p.finalize();
  const RunResult r = run_program(p, net());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 510);  // serialized on the rank's CPU
}

TEST(EngineEdge, WideFanin) {
  Program p(1);
  const OpRef sink = p.calc(0, 7);
  for (int i = 0; i < 300; ++i) {
    const OpRef src = p.calc(0, 1);
    p.depends(src, sink);
  }
  p.finalize();
  const RunResult r = run_program(p, net());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 307);
}

TEST(EngineEdge, SelfContainedTwoRankDeadlockDiagnosis) {
  // Both ranks post receives first (classic head-to-head deadlock when
  // sends depend on the receives).
  Program p(2);
  const OpRef r0 = p.recv(0, 1, 8, 1);
  const OpRef s0 = p.send(0, 1, 8, 2);
  p.depends(r0, s0);
  const OpRef r1 = p.recv(1, 0, 8, 2);
  const OpRef s1 = p.send(1, 0, 8, 1);
  p.depends(r1, s1);
  p.finalize();
  const RunResult r = run_program(p, net());
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("unmatched recv"), std::string::npos);
}

TEST(EngineEdge, RendezvousZeroThreshold) {
  // S = 0: every nonzero message takes the rendezvous path.
  Program p(2);
  p.send(0, 1, 1, 1);
  p.recv(1, 0, 1, 1);
  p.finalize();
  EngineConfig cfg = net();
  cfg.net.S = 0;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  // RTS: o, arrive o+L; match; payload: + (o+L) + o + L + 0; recv o.
  EXPECT_EQ(r.makespan, 100 + 1000 + 1100 + 100 + 1000 + 100);
}

TEST(EngineEdge, BlackoutCoveringWholeRun) {
  Program p(1);
  p.calc(0, 100);
  p.finalize();
  ListBlackouts bl({{{0, 1'000'000}}});
  EngineConfig cfg = net();
  cfg.blackouts = &bl;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 1'000'100);
}

TEST(EngineEdge, StatsViewsConsistent) {
  Program p(3);
  p.send(0, 1, 100, 1);
  p.recv(1, 0, 100, 1);
  p.send(1, 2, 100, 2);
  p.recv(2, 1, 100, 2);
  p.finalize();
  const RunResult r = run_program(p, net());
  ASSERT_TRUE(r.completed);
  std::int64_t sends = 0, recvs = 0;
  for (const auto& rs : r.ranks) {
    sends += rs.sends;
    recvs += rs.recvs;
  }
  EXPECT_EQ(sends, 2);
  EXPECT_EQ(recvs, 2);
  EXPECT_EQ(r.total_recv_wait(), r.ranks[1].recv_wait + r.ranks[2].recv_wait);
  EXPECT_GT(r.mean_cpu_busy(), 0.0);
}

}  // namespace
}  // namespace chksim::sim
