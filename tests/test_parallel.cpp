// chksim::par thread pool + deterministic-parallelism contract tests.
//
// Two layers: (1) the pool/batch primitives themselves (all indices run,
// submission order does not matter, exceptions propagate as the lowest
// throwing index, nested batches do not deadlock); (2) the end-to-end
// guarantee the ISSUE promises — run_sweep, the recovery Monte-Carlo, and
// traced studies produce byte-identical results for --jobs 1/2/8.
#include <atomic>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chksim/ckpt/recovery.hpp"
#include "chksim/core/failure_study.hpp"
#include "chksim/core/study.hpp"
#include "chksim/fault/failures.hpp"
#include "chksim/obs/export.hpp"
#include "chksim/obs/tracer.hpp"
#include "chksim/support/parallel.hpp"

namespace {

using namespace chksim;
using namespace chksim::literals;

// ---------------------------------------------------------------------------
// Pool / batch primitives.

TEST(Parallel, ResolveJobs) {
  EXPECT_GE(par::hardware_jobs(), 1);
  EXPECT_EQ(par::resolve_jobs(0), par::hardware_jobs());
  EXPECT_EQ(par::resolve_jobs(-3), par::hardware_jobs());
  EXPECT_EQ(par::resolve_jobs(5), 5);
}

TEST(Parallel, ZeroAndNegativeCountsAreNoOps) {
  std::atomic<int> ran{0};
  par::for_each_index(0, 8, [&](std::int64_t) { ran.fetch_add(1); });
  par::for_each_index(-4, 8, [&](std::int64_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
}

TEST(Parallel, EveryIndexRunsExactlyOnce) {
  for (const int jobs : {1, 2, 8}) {
    const std::int64_t n = 257;
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    par::for_each_index(n, jobs, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < n; ++i)
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(Parallel, SlotResultsIndependentOfJobs) {
  // The indexed-slot discipline: task i writes slot i from (i) alone, so
  // the slot vector is identical whatever the concurrency.
  auto run = [](int jobs) {
    std::vector<std::uint64_t> slots(500);
    par::for_each_index(500, jobs, [&](std::int64_t i) {
      std::uint64_t x = static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL + 1;
      for (int k = 0; k < 10; ++k) x ^= x >> 27, x *= 0x2545f4914f6cdd1dULL;
      slots[static_cast<std::size_t>(i)] = x;
    });
    return slots;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(Parallel, ExceptionPropagatesLowestIndex) {
  for (const int jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> ran(64);
    try {
      par::for_each_index(64, jobs, [&](std::int64_t i) {
        ran[static_cast<std::size_t>(i)].fetch_add(1);
        if (i == 7 || i == 23) throw std::runtime_error("boom " + std::to_string(i));
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 7") << "jobs=" << jobs;
    }
    // Every index below the throwing one ran (claims are handed out in
    // index order).
    for (int i = 0; i < 7; ++i)
      EXPECT_EQ(ran[static_cast<std::size_t>(i)].load(), 1) << "jobs=" << jobs;
  }
}

TEST(Parallel, NestedBatchesComplete) {
  // Saturate the pool with outer tasks that each run an inner batch; the
  // work-helping waiters must keep everything moving (no deadlock).
  std::atomic<std::int64_t> total{0};
  par::for_each_index(8, 8, [&](std::int64_t) {
    par::for_each_index(16, 4, [&](std::int64_t j) { total.fetch_add(j + 1); });
  });
  EXPECT_EQ(total.load(), 8 * (16 * 17) / 2);
}

TEST(Parallel, PoolSubmissionOrderIndependence) {
  // Raw submissions complete regardless of which worker queue they land on
  // (the cursor distributes round-robin; idle workers steal).
  par::ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { done.fetch_add(1); });
  while (done.load() < 100) {
    if (!pool.try_run_one()) std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), 100);
}

// ---------------------------------------------------------------------------
// End-to-end determinism across --jobs values.

core::StudyConfig small_study(obs::MetricsRegistry* metrics, sim::TraceSink* trace,
                              int jobs) {
  core::StudyConfig cfg;
  cfg.machine.ckpt_bytes_per_node = static_cast<Bytes>(
      0.10 * units::to_seconds(TimeNs{10_ms}) * cfg.machine.node_bw_bytes_per_s);
  cfg.machine.pfs_bw_bytes_per_s = cfg.machine.node_bw_bytes_per_s * 1e7;
  cfg.workload = "halo3d";
  cfg.params.ranks = 64;
  cfg.params.iterations = 8;
  cfg.params.compute = 1_ms;
  cfg.params.bytes = 8_KiB;
  cfg.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
  cfg.protocol.fixed_interval = 10_ms;
  cfg.metrics = metrics;
  cfg.trace = trace;
  cfg.jobs = jobs;
  return cfg;
}

bool same_breakdown(const core::Breakdown& a, const core::Breakdown& b) {
  return a.ranks == b.ranks && a.workload == b.workload && a.protocol == b.protocol &&
         a.interval == b.interval && a.blackout == b.blackout &&
         a.coordination_time == b.coordination_time && a.write_time == b.write_time &&
         a.base_makespan == b.base_makespan &&
         a.perturbed_makespan == b.perturbed_makespan && a.slowdown == b.slowdown &&
         a.overhead_fraction == b.overhead_fraction &&
         a.propagation_factor == b.propagation_factor &&
         a.recv_wait_base == b.recv_wait_base &&
         a.recv_wait_perturbed == b.recv_wait_perturbed && a.ops == b.ops &&
         a.msgs == b.msgs && a.bytes_sent == b.bytes_sent;
}

TEST(ParallelDeterminism, StudyIdenticalAcrossJobs) {
  // One study: breakdown, metrics JSON, and the full trace bytes must be
  // byte-identical whether the engine pair runs on 1, 2, or 8 threads.
  std::vector<core::Breakdown> breakdowns;
  std::vector<std::string> reports;
  std::vector<std::string> traces;
  for (const int jobs : {1, 2, 8}) {
    obs::MetricsRegistry metrics;
    obs::EventTracer tracer(64);
    breakdowns.push_back(core::run_study(small_study(&metrics, &tracer, jobs)));
    reports.push_back(metrics.to_json());
    std::ostringstream trace_bytes;
    obs::write_chrome_trace(tracer, trace_bytes);
    traces.push_back(trace_bytes.str());
  }
  for (std::size_t i = 1; i < breakdowns.size(); ++i) {
    EXPECT_TRUE(same_breakdown(breakdowns[0], breakdowns[i]));
    EXPECT_EQ(reports[0], reports[i]);
    EXPECT_EQ(traces[0], traces[i]);
  }
  EXPECT_FALSE(traces[0].empty());
}

TEST(ParallelDeterminism, SweepIdenticalAcrossJobs) {
  auto sweep = [&](int jobs) {
    std::vector<core::StudyConfig> cells;
    obs::MetricsRegistry metrics;
    for (int ranks : {16, 32, 64}) {
      core::StudyConfig cfg = small_study(&metrics, nullptr, 1);
      cfg.params.ranks = ranks;
      cells.push_back(cfg);
    }
    const std::vector<core::Breakdown> out = core::run_sweep(cells, jobs);
    return std::make_pair(out, metrics.to_json());
  };
  const auto serial = sweep(1);
  for (const int jobs : {2, 8}) {
    const auto par_run = sweep(jobs);
    ASSERT_EQ(serial.first.size(), par_run.first.size());
    for (std::size_t i = 0; i < serial.first.size(); ++i)
      EXPECT_TRUE(same_breakdown(serial.first[i], par_run.first[i])) << "cell " << i;
    EXPECT_EQ(serial.second, par_run.second) << "jobs=" << jobs;
  }
  EXPECT_NE(serial.second.find("study.slowdown"), std::string::npos);
}

TEST(ParallelDeterminism, RecoveryMonteCarloIdenticalAcrossJobs) {
  ckpt::RecoveryParams rp;
  rp.kind = ckpt::ProtocolKind::kCoordinated;
  rp.work_seconds = 3600;
  rp.slowdown = 1.1;
  rp.interval_seconds = 120;
  rp.restart_seconds = 30;
  fault::Exponential dist(1800);

  auto mc = [&](int jobs) {
    obs::MetricsRegistry metrics;
    const ckpt::MakespanResult r =
        ckpt::simulate_makespan(rp, dist, 400, 1234, &metrics, jobs);
    return std::make_pair(r, metrics.to_json());
  };
  const auto serial = mc(1);
  EXPECT_GT(serial.first.mean_failures, 0.0);
  for (const int jobs : {2, 8}) {
    const auto par_run = mc(jobs);
    // Byte-identical: the reduction runs serially in trial order for every
    // jobs value, so even floating-point accumulation matches exactly.
    EXPECT_EQ(serial.first.mean_seconds, par_run.first.mean_seconds);
    EXPECT_EQ(serial.first.stddev_seconds, par_run.first.stddev_seconds);
    EXPECT_EQ(serial.first.p95_seconds, par_run.first.p95_seconds);
    EXPECT_EQ(serial.first.mean_failures, par_run.first.mean_failures);
    EXPECT_EQ(serial.first.efficiency, par_run.first.efficiency);
    EXPECT_EQ(serial.second, par_run.second);
  }
}

TEST(ParallelDeterminism, FailureSweepIdenticalAcrossJobs) {
  auto sweep = [&](int jobs) {
    std::vector<core::FailureStudyConfig> cells;
    for (int ranks : {16, 32}) {
      core::FailureStudyConfig cfg;
      cfg.study = small_study(nullptr, nullptr, 1);
      cfg.study.params.ranks = ranks;
      cfg.trials = 50;
      cfg.work_seconds = 3600;
      cfg.recovery_interval_seconds = 120;
      cfg.study.machine.node_mtbf_hours = 100;
      cells.push_back(cfg);
    }
    return core::run_failure_sweep(cells, jobs);
  };
  const auto serial = sweep(1);
  for (const int jobs : {2, 8}) {
    const auto par_run = sweep(jobs);
    ASSERT_EQ(serial.size(), par_run.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(same_breakdown(serial[i].breakdown, par_run[i].breakdown));
      EXPECT_EQ(serial[i].makespan.mean_seconds, par_run[i].makespan.mean_seconds);
      EXPECT_EQ(serial[i].makespan.p95_seconds, par_run[i].makespan.p95_seconds);
    }
  }
}

TEST(ParallelDeterminism, MetricsMergeMatchesSerialSemantics) {
  // merge(): counters add, gauges last-write-wins, histograms accumulate.
  obs::MetricsRegistry a, b;
  a.add_counter("c", 2);
  b.add_counter("c", 3);
  a.set_gauge("g", 1.0);
  b.set_gauge("g", 7.0);
  a.stats("s").add(1.0);
  b.stats("s").add(3.0);
  a.histogram("h", 0, 10, 5).add(1.0);
  b.histogram("h", 0, 10, 5).add(9.0);
  b.histogram("only_b", 0, 1, 2).add(0.5);
  a.merge(b);
  EXPECT_EQ(a.counter("c"), 5);
  EXPECT_EQ(a.gauge("g"), 7.0);
  EXPECT_EQ(a.find_stats("s")->count(), 2);
  EXPECT_EQ(a.find_stats("s")->mean(), 2.0);
  EXPECT_EQ(a.find_histogram("h")->total(), 2);
  ASSERT_NE(a.find_histogram("only_b"), nullptr);
  EXPECT_EQ(a.find_histogram("only_b")->total(), 1);

  obs::MetricsRegistry c;
  c.histogram("h", 0, 20, 5);  // same name, different shape
  EXPECT_THROW(c.merge(a), std::invalid_argument);
}

}  // namespace
