// Golden makespan regression for every registry workload.
//
// The expected values were produced by the pre-compaction Program
// representation (per-rank Op vectors + full CSR successor lists) at commit
// eb8589b, under the exact LogGOPS configuration below. The compact SoA
// representation and the iteration-template generator rewrites must
// reproduce each workload's op count, edge count, and makespan exactly —
// any drift means the DAG (not just its encoding) changed.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "chksim/sim/engine.hpp"
#include "chksim/workload/workloads.hpp"

namespace chksim {
namespace {

struct Golden {
  std::int64_t ops;
  std::int64_t edges;
  TimeNs makespan;
};

const std::map<std::string, Golden>& goldens() {
  static const std::map<std::string, Golden> kGoldens = {
      {"allreduce", {960, 1616, 375072}},
      {"bsp_imbalanced", {960, 1616, 429328}},
      {"ep", {240, 336, 307608}},
      {"fft", {3072, 5840, 581520}},
      {"fft2d", {1536, 2480, 412608}},
      {"halo2d", {864, 1408, 344472}},
      {"halo2d9", {1632, 2816, 378744}},
      {"halo3d", {864, 1408, 344472}},
      {"halo3d27", {2208, 3872, 404448}},
      {"hpccg", {3840, 6512, 526416}},
      {"lammps", {960, 1616, 344472}},
      {"master_worker", {450, 330, 393982}},
      {"pipeline", {1104, 1088, 2006120}},
      {"random", {864, 1488, 345272}},
      {"ring", {288, 352, 318768}},
      {"sweep2d", {1536, 2072, 7001232}},
  };
  return kGoldens;
}

class WorkloadGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadGolden, MatchesSeedRepresentation) {
  const std::string name = GetParam();
  const Golden& g = goldens().at(name);

  workload::StdParams p;
  p.ranks = 16;
  p.iterations = 6;
  p.compute = 50'000;
  p.bytes = 4096;
  p.seed = 7;
  sim::Program prog = workload::make_workload(name, p);
  const sim::ProgramStats st = prog.finalize();
  EXPECT_EQ(st.ops, g.ops) << name;
  EXPECT_EQ(st.edges, g.edges) << name;

  sim::EngineConfig cfg;
  cfg.net.L = 1500;
  cfg.net.o = 200;
  cfg.net.g = 400;
  cfg.net.G = 0.3;
  cfg.net.S = 16384;
  const sim::RunResult r = sim::run_program(prog, cfg);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.makespan, g.makespan) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, WorkloadGolden,
    ::testing::Values("allreduce", "bsp_imbalanced", "ep", "fft", "fft2d",
                      "halo2d", "halo2d9", "halo3d", "halo3d27", "hpccg",
                      "lammps", "master_worker", "pipeline", "random", "ring",
                      "sweep2d"),
    [](const ::testing::TestParamInfo<std::string>& info) { return info.param; });

}  // namespace
}  // namespace chksim
