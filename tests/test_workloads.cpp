// Workload-generator tests: structural invariants (matching, op counts) and
// engine completion for every registry workload across sizes.
#include "chksim/workload/workloads.hpp"

#include <gtest/gtest.h>

#include "chksim/sim/engine.hpp"

namespace chksim::workload {
namespace {

sim::EngineConfig fast_net() {
  sim::EngineConfig cfg;
  cfg.net.L = 1000;
  cfg.net.o = 100;
  cfg.net.g = 100;
  cfg.net.G = 0.0;
  cfg.net.S = 1 << 30;
  return cfg;
}

TEST(Factor2d, SquareAndPrime) {
  const Grid2d a = factor2d(16);
  EXPECT_EQ(a.x, 4);
  EXPECT_EQ(a.y, 4);
  const Grid2d b = factor2d(12);
  EXPECT_EQ(b.x, 3);
  EXPECT_EQ(b.y, 4);
  const Grid2d c = factor2d(7);
  EXPECT_EQ(c.x, 1);
  EXPECT_EQ(c.y, 7);
  EXPECT_THROW(factor2d(0), std::invalid_argument);
}

TEST(Factor3d, CubicAndOdd) {
  const Grid3d a = factor3d(27);
  EXPECT_EQ(a.x, 3);
  EXPECT_EQ(a.y, 3);
  EXPECT_EQ(a.z, 3);
  const Grid3d b = factor3d(64);
  EXPECT_EQ(b.x * b.y * b.z, 64);
  EXPECT_LE(b.x, b.y);
  EXPECT_LE(b.y, b.z);
  const Grid3d c = factor3d(30);
  EXPECT_EQ(c.x * c.y * c.z, 30);
}

TEST(Halo2d, FivePointMessageCount) {
  Halo2dConfig cfg;
  cfg.ranks = 16;  // 4x4, all ranks have 4 distinct neighbours
  cfg.iterations = 3;
  sim::Program p = make_halo2d(cfg);
  const auto st = p.finalize();
  EXPECT_EQ(st.sends, 16 * 4 * 3);
  EXPECT_EQ(st.recvs, 16 * 4 * 3);
  EXPECT_EQ(st.calcs, 16 * 3);
  EXPECT_TRUE(p.check_matching().empty());
}

TEST(Halo2d, NinePointHasMoreNeighbors) {
  Halo2dConfig five;
  five.ranks = 16;
  five.iterations = 1;
  Halo2dConfig nine = five;
  nine.nine_point = true;
  sim::Program p5 = make_halo2d(five);
  sim::Program p9 = make_halo2d(nine);
  EXPECT_GT(p9.finalize().sends, p5.finalize().sends);
}

TEST(Halo3d, SevenPointMessageCount) {
  Halo3dConfig cfg;
  cfg.ranks = 27;  // 3x3x3: every rank has 6 distinct neighbours
  cfg.iterations = 2;
  sim::Program p = make_halo3d(cfg);
  const auto st = p.finalize();
  EXPECT_EQ(st.sends, 27 * 6 * 2);
  EXPECT_TRUE(p.check_matching().empty());
}

TEST(Halo3d, TwentySevenPointMessageCount) {
  Halo3dConfig cfg;
  cfg.ranks = 27;
  cfg.iterations = 1;
  cfg.full27 = true;
  sim::Program p = make_halo3d(cfg);
  EXPECT_EQ(p.finalize().sends, 27 * 26);
}

TEST(Halo2d, DegenerateSmallGridsComplete) {
  for (int ranks : {2, 3, 4, 6}) {
    Halo2dConfig cfg;
    cfg.ranks = ranks;
    cfg.iterations = 2;
    sim::Program p = make_halo2d(cfg);
    p.finalize();
    ASSERT_TRUE(p.check_matching().empty()) << "ranks=" << ranks;
    const auto cfg2 = fast_net();
    const sim::RunResult r = sim::run_program(p, cfg2);
    ASSERT_TRUE(r.completed) << "ranks=" << ranks << ": " << r.error;
  }
}

TEST(Sweep2d, WavefrontDepthScalesWithGridDiagonal) {
  // With zero network costs and fixed stage compute, one directional sweep
  // completes in (px + py - 1) stages along the critical path.
  SweepConfig cfg;
  cfg.ranks = 16;  // 4x4
  cfg.sweeps = 1;
  cfg.compute_per_stage = 1000;
  cfg.angle_bytes = 0;
  sim::Program p = make_sweep2d(cfg);
  p.finalize();
  sim::EngineConfig ec;
  ec.net.L = 0;
  ec.net.o = 0;
  ec.net.g = 0;
  ec.net.G = 0;
  const sim::RunResult r = sim::run_program(p, ec);
  ASSERT_TRUE(r.completed) << r.error;
  // 4 directions, each with a (4+4-1)=7-stage diagonal critical path, but
  // directions pipeline; the lower bound is one full sweep + drain.
  EXPECT_GE(r.makespan, 7 * 1000);
  EXPECT_LE(r.makespan, 4 * 16 * 1000);
}

TEST(Sweep2d, MatchingIsConsistent) {
  SweepConfig cfg;
  cfg.ranks = 12;
  cfg.sweeps = 2;
  sim::Program p = make_sweep2d(cfg);
  p.finalize();
  EXPECT_TRUE(p.check_matching().empty());
}

TEST(Hpccg, HasHaloAndAllreduces) {
  HpccgConfig cfg;
  cfg.ranks = 8;
  cfg.iterations = 2;
  cfg.dot_products = 3;
  sim::Program p = make_hpccg(cfg);
  const auto st = p.finalize();
  // 8 ranks = 2x2x2 grid: 3 distinct neighbours each (periodic dims of
  // extent 2 collapse +/- to the same rank). Halo sends = 8*3 per iter;
  // allreduce (P=8, power of 2) = 8*3 sends per call, 3 calls per iter.
  EXPECT_EQ(st.sends, 2 * (8 * 3 + 3 * 8 * 3));
  EXPECT_TRUE(p.check_matching().empty());
}

TEST(Lammps, AllreduceCadence) {
  LammpsConfig base;
  base.ranks = 8;
  base.iterations = 10;
  base.allreduce_every = 5;
  sim::Program p = make_lammps(base);
  const auto st = p.finalize();
  LammpsConfig none = base;
  none.allreduce_every = 0;
  sim::Program q = make_lammps(none);
  const auto st2 = q.finalize();
  // Two allreduces' worth of extra sends (iterations 5 and 10).
  EXPECT_EQ(st.sends - st2.sends, 2 * 8 * 3);
}

TEST(Fft, AlltoallVolume) {
  FftConfig cfg;
  cfg.ranks = 8;
  cfg.iterations = 2;
  cfg.bytes_per_pair = 1000;
  sim::Program p = make_fft(cfg);
  const auto st = p.finalize();
  EXPECT_EQ(st.sends, 2 * 8 * 7);
  EXPECT_EQ(st.bytes_sent, static_cast<Bytes>(2) * 8 * 7 * 1000);
}

TEST(Ring, Completes) {
  RingConfig cfg;
  cfg.ranks = 5;
  cfg.iterations = 4;
  sim::Program p = make_ring(cfg);
  p.finalize();
  const sim::RunResult r = sim::run_program(p, fast_net());
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_THROW(make_ring({1, 1, 1, 1}), std::invalid_argument);
}

TEST(RandomSparse, DegreeRespected) {
  RandomSparseConfig cfg;
  cfg.ranks = 10;
  cfg.iterations = 3;
  cfg.degree = 4;
  sim::Program p = make_random_sparse(cfg);
  const auto st = p.finalize();
  EXPECT_EQ(st.sends, 10 * 4 * 3);
  EXPECT_TRUE(p.check_matching().empty());
  EXPECT_THROW(make_random_sparse({4, 1, 1, 1, 4, 1}), std::invalid_argument);
}

TEST(RandomSparse, SeedReproducible) {
  RandomSparseConfig cfg;
  cfg.ranks = 12;
  cfg.iterations = 2;
  cfg.seed = 99;
  sim::Program a = make_random_sparse(cfg);
  sim::Program b = make_random_sparse(cfg);
  a.finalize();
  b.finalize();
  const sim::RunResult ra = sim::run_program(a, fast_net());
  const sim::RunResult rb = sim::run_program(b, fast_net());
  EXPECT_EQ(ra.makespan, rb.makespan);
}

TEST(MasterWorker, AllTasksFlowThroughMaster) {
  MasterWorkerConfig cfg;
  cfg.ranks = 4;
  cfg.tasks = 9;
  sim::Program p = make_master_worker(cfg);
  const auto st = p.finalize();
  // Each task: dispatch + result = 2 sends.
  EXPECT_EQ(st.sends, 2 * 9);
  EXPECT_TRUE(p.check_matching().empty());
  const sim::RunResult r = sim::run_program(p, fast_net());
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.ranks[0].sends, 9);  // master dispatches all tasks
}

TEST(Ep, OnlyFinalCollective) {
  EpConfig cfg;
  cfg.ranks = 8;
  cfg.iterations = 5;
  sim::Program p = make_ep(cfg);
  const auto st = p.finalize();
  EXPECT_EQ(st.sends, 8 * 3);      // one allreduce at P=8
  EXPECT_EQ(st.calcs, 8 * 5 + 8);  // iteration calcs + collective join nodes
}

TEST(Registry, AllWorkloadsBuildAndComplete) {
  StdParams params;
  params.ranks = 8;
  params.iterations = 2;
  params.compute = 100'000;
  params.bytes = 1024;
  for (const std::string& name : workload_names()) {
    sim::Program p = make_workload(name, params);
    p.finalize();
    ASSERT_TRUE(p.check_matching().empty()) << name;
    const sim::RunResult r = sim::run_program(p, fast_net());
    ASSERT_TRUE(r.completed) << name << ": " << r.error;
    EXPECT_GT(r.makespan, 0) << name;
    EXPECT_FALSE(workload_description(name).empty());
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_workload("nope", StdParams{}), std::invalid_argument);
  EXPECT_THROW(workload_description("nope"), std::invalid_argument);
}

class RegistrySizeSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(RegistrySizeSweep, CompletesAtSize) {
  const auto& [name, ranks] = GetParam();
  StdParams params;
  params.ranks = ranks;
  params.iterations = 2;
  params.compute = 50'000;
  params.bytes = 512;
  sim::Program p = make_workload(name, params);
  p.finalize();
  const sim::RunResult r = sim::run_program(p, fast_net());
  ASSERT_TRUE(r.completed) << name << "@" << ranks << ": " << r.error;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegistrySizeSweep,
    ::testing::Combine(::testing::Values("halo2d", "halo3d", "halo3d27", "sweep2d",
                                         "hpccg", "lammps", "fft", "ring", "random",
                                         "master_worker", "ep", "allreduce"),
                       ::testing::Values(2, 5, 16, 33, 64)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>& info) {
      return std::get<0>(info.param) + "_" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace chksim::workload
