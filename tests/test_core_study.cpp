// Core facade tests: run_study breakdowns, failure studies, scale model.
#include "chksim/core/study.hpp"

#include <gtest/gtest.h>

#include "chksim/core/failure_study.hpp"
#include "chksim/core/scale_model.hpp"

namespace chksim::core {
namespace {

using namespace chksim::literals;

StudyConfig small_study() {
  StudyConfig cfg;
  cfg.machine = net::infiniband_system();
  // Shrink the checkpoint so short test runs see several checkpoints:
  // 4 MiB at 1.5 GB/s ~ 2.8 ms per write against a 10 ms interval.
  cfg.machine.ckpt_bytes_per_node = 4_MiB;
  cfg.workload = "halo3d";
  cfg.params.ranks = 27;
  cfg.params.iterations = 20;
  cfg.params.compute = 2'000'000;  // 2 ms
  cfg.params.bytes = 4096;
  cfg.protocol.kind = ckpt::ProtocolKind::kCoordinated;
  cfg.protocol.interval_policy = ckpt::IntervalPolicy::kFixed;
  cfg.protocol.fixed_interval = 10_ms;  // frequent, so the short run sees many
  return cfg;
}

TEST(RunStudy, NoneProtocolHasNoOverhead) {
  StudyConfig cfg = small_study();
  cfg.protocol.kind = ckpt::ProtocolKind::kNone;
  const Breakdown b = run_study(cfg);
  EXPECT_EQ(b.base_makespan, b.perturbed_makespan);
  EXPECT_DOUBLE_EQ(b.slowdown, 1.0);
  EXPECT_DOUBLE_EQ(b.duty_cycle, 0.0);
  EXPECT_GT(b.ops, 0);
  EXPECT_GT(b.msgs, 0);
}

TEST(RunStudy, CoordinatedSlowsDown) {
  const Breakdown b = run_study(small_study());
  EXPECT_GT(b.perturbed_makespan, b.base_makespan);
  EXPECT_GT(b.slowdown, 1.0);
  EXPECT_GT(b.duty_cycle, 0.0);
  EXPECT_GT(b.blackout, 0);
  EXPECT_EQ(b.blackout, b.coordination_time + b.write_time);
  EXPECT_EQ(b.protocol, "coordinated");
  EXPECT_EQ(b.workload, "halo3d");
  EXPECT_EQ(b.ranks, 27);
}

TEST(RunStudy, CoordinatedOverheadTracksDutyCycle) {
  // Aligned blackouts on a bulk-synchronous app: overhead close to the duty
  // cycle (propagation factor around 1).
  const Breakdown b = run_study(small_study());
  EXPECT_GT(b.propagation_factor, 0.5);
  EXPECT_LT(b.propagation_factor, 3.0);
}

TEST(RunStudy, UncoordinatedWithoutTax) {
  StudyConfig cfg = small_study();
  cfg.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
  const Breakdown b = run_study(cfg);
  EXPECT_GT(b.slowdown, 1.0);
  EXPECT_EQ(b.coordination_time, 0);
  EXPECT_EQ(b.protocol, "uncoordinated");
}

TEST(RunStudy, LoggingTaxAddsOverheadWithoutBlackouts) {
  StudyConfig cfg = small_study();
  cfg.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
  StudyConfig taxed = cfg;
  // A tax large relative to slack: 6 sends x 100 us against 2 ms compute.
  taxed.protocol.log_per_message = 100'000;
  const Breakdown b0 = run_study(cfg);
  const Breakdown b1 = run_study(taxed);
  EXPECT_GT(b1.slowdown, b0.slowdown);
}

TEST(RunStudy, SmallLoggingTaxIsAbsorbedBySlack) {
  // The flip side (a key communication effect): a tax much smaller than
  // the available recv slack does not move the critical path.
  StudyConfig cfg = small_study();
  cfg.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
  StudyConfig taxed = cfg;
  taxed.protocol.log_per_message = 1'000;  // 1 us per message
  const Breakdown b0 = run_study(cfg);
  const Breakdown b1 = run_study(taxed);
  EXPECT_NEAR(b1.slowdown, b0.slowdown, 0.02 * b0.slowdown);
}

TEST(RunStudy, HierarchicalBetweenExtremes) {
  StudyConfig cfg = small_study();
  cfg.protocol.kind = ckpt::ProtocolKind::kHierarchical;
  cfg.protocol.cluster_size = 9;
  const Breakdown b = run_study(cfg);
  EXPECT_GT(b.slowdown, 1.0);
  EXPECT_NE(b.protocol.find("hierarchical"), std::string::npos);
}

TEST(RunStudy, DeterministicAcrossCalls) {
  const Breakdown a = run_study(small_study());
  const Breakdown b = run_study(small_study());
  EXPECT_EQ(a.perturbed_makespan, b.perturbed_makespan);
  EXPECT_EQ(a.base_makespan, b.base_makespan);
}

TEST(RunStudy, UnknownWorkloadThrows) {
  StudyConfig cfg = small_study();
  cfg.workload = "nope";
  EXPECT_THROW(run_study(cfg), std::invalid_argument);
}

TEST(PrepareProtocol, ResolvesIntervalPolicy) {
  ProtocolSpec spec;
  spec.kind = ckpt::ProtocolKind::kCoordinated;
  spec.interval_policy = ckpt::IntervalPolicy::kDaly;
  const ckpt::Artifacts a = prepare_protocol(spec, net::infiniband_system(), 1024);
  EXPECT_GT(a.interval, 0);
  EXPECT_GT(a.blackout, 0);
  EXPECT_LT(a.blackout, a.interval);
}

TEST(FailureStudy, EndToEnd) {
  FailureStudyConfig cfg;
  cfg.study = small_study();
  cfg.work_seconds = 3600;
  cfg.trials = 50;
  const FailureStudyResult r = run_failure_study(cfg);
  EXPECT_GT(r.breakdown.slowdown, 1.0);
  EXPECT_GT(r.system_mtbf_seconds, 0);
  EXPECT_GT(r.makespan.mean_seconds, cfg.work_seconds);
  EXPECT_GT(r.makespan.efficiency, 0);
  EXPECT_LE(r.makespan.efficiency, 1.0);
}

TEST(FailureStudy, WeibullOptionRuns) {
  FailureStudyConfig cfg;
  cfg.study = small_study();
  cfg.work_seconds = 3600;
  cfg.trials = 20;
  cfg.weibull_shape = 0.7;
  const FailureStudyResult r = run_failure_study(cfg);
  EXPECT_GT(r.makespan.mean_seconds, 0);
}

TEST(ScaleModel, EfficiencyDegradesWithScale) {
  ScaleModelConfig cfg;
  cfg.machine = net::infiniband_system();
  cfg.protocol.kind = ckpt::ProtocolKind::kCoordinated;
  cfg.protocol.interval_policy = ckpt::IntervalPolicy::kDaly;
  cfg.kappa = 1.2;
  cfg.trials = 50;
  const ScalePoint small = efficiency_at_scale(cfg, 1024);
  const ScalePoint large = efficiency_at_scale(cfg, 65536);
  EXPECT_GT(small.efficiency, large.efficiency);
  EXPECT_GT(large.duty_cycle, small.duty_cycle);
  EXPECT_LT(large.system_mtbf_seconds, small.system_mtbf_seconds);
}

TEST(ScaleModel, UncoordinatedWinsAtScaleWhenLoggingIsFree) {
  ScaleModelConfig co;
  co.protocol.kind = ckpt::ProtocolKind::kCoordinated;
  co.protocol.interval_policy = ckpt::IntervalPolicy::kDaly;
  co.kappa = 1.2;
  co.trials = 50;
  ScaleModelConfig un = co;
  un.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
  const int P = 4096;
  const ScalePoint c = efficiency_at_scale(co, P);
  const ScalePoint u = efficiency_at_scale(un, P);
  // Spread I/O keeps the uncoordinated duty cycle smaller at scale.
  EXPECT_LT(u.duty_cycle, c.duty_cycle);
  EXPECT_GT(u.efficiency, c.efficiency);
}

TEST(ScaleModel, IoWallIsDetectedAtExtremeScale) {
  // At 64Ki nodes x 4 GiB, the offered checkpoint load exceeds the PFS
  // aggregate bandwidth at the optimal interval: the model refuses rather
  // than returning a fictitious steady state. (This *is* the exascale I/O
  // wall; E12 marks such points infeasible.)
  ScaleModelConfig cfg;
  cfg.machine = net::infiniband_system();
  cfg.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
  cfg.protocol.interval_policy = ckpt::IntervalPolicy::kDaly;
  cfg.kappa = 1.2;
  cfg.trials = 10;
  EXPECT_THROW(efficiency_at_scale(cfg, 65536), std::invalid_argument);
}

TEST(ScaleModel, SweepIsOrdered) {
  ScaleModelConfig cfg;
  cfg.protocol.kind = ckpt::ProtocolKind::kCoordinated;
  cfg.protocol.interval_policy = ckpt::IntervalPolicy::kDaly;
  cfg.kappa = 1.0;
  cfg.trials = 30;
  const auto pts = efficiency_sweep(cfg, {256, 4096, 65536});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_GT(pts[0].efficiency, pts[2].efficiency);
  EXPECT_THROW(efficiency_at_scale(cfg, 0), std::invalid_argument);
}

class StudyProtocolSweep : public ::testing::TestWithParam<ckpt::ProtocolKind> {};

TEST_P(StudyProtocolSweep, RunsOnSeveralWorkloads) {
  for (const char* wl : {"halo2d", "hpccg", "ep"}) {
    StudyConfig cfg = small_study();
    cfg.workload = wl;
    cfg.params.ranks = 16;
    cfg.protocol.kind = GetParam();
    cfg.protocol.cluster_size = 4;
    const Breakdown b = run_study(cfg);
    EXPECT_GE(b.slowdown, 1.0) << wl;
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, StudyProtocolSweep,
                         ::testing::Values(ckpt::ProtocolKind::kNone,
                                           ckpt::ProtocolKind::kCoordinated,
                                           ckpt::ProtocolKind::kUncoordinated,
                                           ckpt::ProtocolKind::kHierarchical));

}  // namespace
}  // namespace chksim::core
