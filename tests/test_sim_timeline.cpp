// Timeline-extraction tests.
#include "chksim/sim/timeline.hpp"

#include <gtest/gtest.h>

namespace chksim::sim {
namespace {

EngineConfig simple_net() {
  EngineConfig cfg;
  cfg.net.L = 1000;
  cfg.net.o = 100;
  cfg.net.g = 0;
  cfg.net.G = 0.0;
  cfg.net.S = 1 << 30;
  cfg.record_op_finish = true;
  return cfg;
}

TEST(Timeline, RequiresRecordedFinishTimes) {
  Program p(1);
  p.calc(0, 100);
  p.finalize();
  EngineConfig cfg = simple_net();
  cfg.record_op_finish = false;
  const RunResult r = run_program(p, cfg);
  EXPECT_THROW(Timeline(p, r, cfg, 100), std::invalid_argument);
}

TEST(Timeline, PureCalcIsAllBusy) {
  Program p(1);
  const OpRef a = p.calc(0, 100);
  const OpRef b = p.calc(0, 200);
  p.depends(a, b);
  p.finalize();
  const EngineConfig cfg = simple_net();
  const RunResult r = run_program(p, cfg);
  const Timeline tl(p, r, cfg, r.makespan);
  ASSERT_EQ(tl.ranks(), 1);
  EXPECT_EQ(tl.total(0, SegmentKind::kBusy), 300);
  EXPECT_EQ(tl.total(0, SegmentKind::kIdle), 0);
  EXPECT_EQ(tl.total(0, SegmentKind::kBlackout), 0);
  EXPECT_DOUBLE_EQ(tl.utilization(), 1.0);
}

TEST(Timeline, RecvWaitShowsAsIdle) {
  Program p(2);
  p.send(0, 1, 8, 1);
  p.recv(1, 0, 8, 1);
  p.finalize();
  const EngineConfig cfg = simple_net();
  const RunResult r = run_program(p, cfg);
  const Timeline tl(p, r, cfg, r.makespan);
  // Rank 1 waits 1100 ns, then 100 ns recv overhead.
  EXPECT_EQ(tl.total(1, SegmentKind::kIdle), 1100);
  EXPECT_EQ(tl.total(1, SegmentKind::kBusy), 100);
  // Rank 0: 100 ns busy, rest idle.
  EXPECT_EQ(tl.total(0, SegmentKind::kBusy), 100);
  EXPECT_EQ(tl.total(0, SegmentKind::kIdle), r.makespan - 100);
}

TEST(Timeline, BlackoutSegmentsAppear) {
  Program p(1);
  p.calc(0, 1000);
  p.finalize();
  ListBlackouts bl({{{200, 500}}});
  EngineConfig cfg = simple_net();
  cfg.blackouts = &bl;
  const RunResult r = run_program(p, cfg);
  ASSERT_EQ(r.makespan, 1300);
  const Timeline tl(p, r, cfg, r.makespan);
  EXPECT_EQ(tl.total(0, SegmentKind::kBlackout), 300);
  // Busy = 1000 (split around the blackout).
  EXPECT_EQ(tl.total(0, SegmentKind::kBusy), 1000);
  EXPECT_EQ(tl.total(0, SegmentKind::kIdle), 0);
}

TEST(Timeline, SegmentsPartitionHorizon) {
  Program p(2);
  const OpRef s = p.send(0, 1, 8, 1);
  const OpRef c = p.calc(0, 5000);
  p.depends(s, c);
  const OpRef rv = p.recv(1, 0, 8, 1);
  const OpRef c2 = p.calc(1, 2000);
  p.depends(rv, c2);
  p.finalize();
  PeriodicBlackouts bl(3000, 400, TimeNs{100});
  EngineConfig cfg = simple_net();
  cfg.blackouts = &bl;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  const Timeline tl(p, r, cfg, r.makespan);
  for (RankId rank = 0; rank < 2; ++rank) {
    const auto& segs = tl.of(rank);
    ASSERT_FALSE(segs.empty());
    EXPECT_EQ(segs.front().begin, 0);
    EXPECT_EQ(segs.back().end, r.makespan);
    for (std::size_t i = 1; i < segs.size(); ++i) {
      EXPECT_EQ(segs[i].begin, segs[i - 1].end);          // contiguous
      EXPECT_NE(segs[i].kind, segs[i - 1].kind);          // maximal segments
    }
    TimeNs sum = 0;
    for (const Segment& s2 : segs) sum += s2.duration();
    EXPECT_EQ(sum, r.makespan);
  }
}

TEST(Timeline, CsvFormat) {
  Program p(1);
  p.calc(0, 50);
  p.finalize();
  const EngineConfig cfg = simple_net();
  const RunResult r = run_program(p, cfg);
  const Timeline tl(p, r, cfg, r.makespan);
  const std::string csv = tl.to_csv();
  EXPECT_NE(csv.find("rank,begin_ns,end_ns,kind"), std::string::npos);
  EXPECT_NE(csv.find("0,0,50,busy"), std::string::npos);
}

}  // namespace
}  // namespace chksim::sim
