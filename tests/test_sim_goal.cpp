// GOAL trace format: serialization, parsing, round trips, and error
// reporting.
#include "chksim/sim/goal.hpp"

#include <gtest/gtest.h>

#include "chksim/sim/engine.hpp"
#include "chksim/workload/workloads.hpp"

namespace chksim::sim {
namespace {

TEST(Goal, SerializeRequiresFinalized) {
  Program p(1);
  p.calc(0, 10);
  EXPECT_THROW(to_goal(p), std::logic_error);
}

TEST(Goal, SerializeSimpleProgram) {
  Program p(2);
  const OpRef c = p.calc(0, 50);
  const OpRef s = p.send(0, 1, 64, 3);
  p.depends(c, s);
  p.recv(1, 0, 64, 3);
  p.finalize();
  const std::string goal = to_goal(p);
  EXPECT_NE(goal.find("num_ranks 2"), std::string::npos);
  EXPECT_NE(goal.find("l0: calc 50"), std::string::npos);
  EXPECT_NE(goal.find("l1: send 64b to 1 tag 3"), std::string::npos);
  EXPECT_NE(goal.find("l0: recv 64b from 0 tag 3"), std::string::npos);
  EXPECT_NE(goal.find("l1 requires l0"), std::string::npos);
}

TEST(Goal, ParseBasicProgram) {
  const std::string text = R"(
# a comment
num_ranks 2
rank 0 {
  l0: calc 100
  l1: send 8b to 1 tag 5
  l1 requires l0
}
rank 1 {
  l0: recv 8b from 0 tag 5
}
)";
  Program p = from_goal(text);
  const ProgramStats st = p.finalize();
  EXPECT_EQ(st.ops, 3);
  EXPECT_EQ(st.edges, 1);
  EXPECT_TRUE(p.check_matching().empty());
}

TEST(Goal, TagIsOptional) {
  Program p = from_goal(
      "num_ranks 2\nrank 0 {\n l0: send 8b to 1\n}\nrank 1 {\n l0: recv 8b from 0\n}\n");
  p.finalize();
  EXPECT_TRUE(p.check_matching().empty());
}

TEST(Goal, RequiresBeforeDefinitionResolvesAtBlockClose) {
  Program p = from_goal(R"(
num_ranks 1
rank 0 {
  l5 requires l1
  l1: calc 10
  l5: calc 20
}
)");
  EXPECT_EQ(p.finalize().edges, 1);
}

TEST(Goal, RoundTripPreservesSemantics) {
  workload::StdParams params;
  params.ranks = 8;
  params.iterations = 3;
  params.compute = 100'000;
  params.bytes = 1024;
  Program original = workload::make_workload("hpccg", params);
  const ProgramStats st0 = original.finalize();
  const std::string goal = to_goal(original);

  Program parsed = from_goal(goal);
  const ProgramStats st1 = parsed.finalize();
  EXPECT_EQ(st0.ops, st1.ops);
  EXPECT_EQ(st0.sends, st1.sends);
  EXPECT_EQ(st0.recvs, st1.recvs);
  EXPECT_EQ(st0.edges, st1.edges);
  EXPECT_EQ(st0.bytes_sent, st1.bytes_sent);
  EXPECT_EQ(st0.max_depth, st1.max_depth);

  // And the engine agrees: identical makespan.
  EngineConfig cfg;
  const RunResult r0 = run_program(original, cfg);
  const RunResult r1 = run_program(parsed, cfg);
  ASSERT_TRUE(r0.completed);
  ASSERT_TRUE(r1.completed);
  EXPECT_EQ(r0.makespan, r1.makespan);
}

TEST(Goal, SecondRoundTripIsIdentityText) {
  workload::StdParams params;
  params.ranks = 4;
  params.iterations = 2;
  Program p = workload::make_workload("ring", params);
  p.finalize();
  const std::string once = to_goal(p);
  Program q = from_goal(once);
  q.finalize();
  EXPECT_EQ(to_goal(q), once);
}

struct BadCase {
  const char* name;
  const char* text;
};

class GoalErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(GoalErrors, Rejected) {
  EXPECT_THROW(from_goal(GetParam().text), std::invalid_argument) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GoalErrors,
    ::testing::Values(
        BadCase{"missing_header", "rank 0 {\n}\n"},
        BadCase{"zero_ranks", "num_ranks 0\n"},
        BadCase{"bad_rank_count", "num_ranks x\n"},
        BadCase{"nested_block", "num_ranks 1\nrank 0 {\nrank 0 {\n"},
        BadCase{"unmatched_close", "num_ranks 1\n}\n"},
        BadCase{"unterminated", "num_ranks 1\nrank 0 {\n l0: calc 1\n"},
        BadCase{"stmt_outside_block", "num_ranks 1\nl0: calc 5\n"},
        BadCase{"rank_out_of_range", "num_ranks 2\nrank 5 {\n}\n"},
        BadCase{"self_send", "num_ranks 2\nrank 0 {\n l0: send 8b to 0\n}\n"},
        BadCase{"peer_out_of_range", "num_ranks 2\nrank 0 {\n l0: send 8b to 9\n}\n"},
        BadCase{"bad_bytes", "num_ranks 2\nrank 0 {\n l0: send 8 to 1\n}\n"},
        BadCase{"negative_calc", "num_ranks 1\nrank 0 {\n l0: calc -5\n}\n"},
        BadCase{"unknown_verb", "num_ranks 1\nrank 0 {\n l0: fma 5\n}\n"},
        BadCase{"duplicate_label",
                "num_ranks 1\nrank 0 {\n l0: calc 1\n l0: calc 2\n}\n"},
        BadCase{"unknown_dep_label",
                "num_ranks 1\nrank 0 {\n l0: calc 1\n l0 requires l9\n}\n"},
        BadCase{"bad_label", "num_ranks 1\nrank 0 {\n x0: calc 1\n}\n"},
        BadCase{"wrong_direction", "num_ranks 2\nrank 0 {\n l0: send 8b from 1\n}\n"}),
    [](const ::testing::TestParamInfo<BadCase>& info) { return info.param.name; });

TEST(Goal, ParseErrorsMentionLineNumbers) {
  try {
    from_goal("num_ranks 1\nrank 0 {\n  l0: calc x\n}\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace chksim::sim
