// PatternedBlackouts and incremental-checkpointing tests.
#include <gtest/gtest.h>

#include "chksim/ckpt/protocols.hpp"
#include "chksim/core/study.hpp"

namespace chksim {
namespace {

using namespace chksim::literals;
using sim::Interval;
using sim::PatternedBlackouts;

TEST(PatternedBlackouts, CycleOfDurations) {
  // period 100: full 20 at t=0, deltas 5 at t=100, 200, full again at 300.
  PatternedBlackouts bl(100, {20, 5, 5}, TimeNs{0});
  EXPECT_EQ(*bl.next_blackout(0, 0), (Interval{0, 20}));
  EXPECT_EQ(*bl.next_blackout(0, 20), (Interval{100, 105}));
  EXPECT_EQ(*bl.next_blackout(0, 105), (Interval{200, 205}));
  EXPECT_EQ(*bl.next_blackout(0, 205), (Interval{300, 320}));
  EXPECT_EQ(bl.mean_duration(), 10);
}

TEST(PatternedBlackouts, QueryInsideInterval) {
  PatternedBlackouts bl(100, {20, 5}, TimeNs{0});
  EXPECT_EQ(*bl.next_blackout(0, 10), (Interval{0, 20}));
  EXPECT_EQ(*bl.next_blackout(0, 102), (Interval{100, 105}));
}

TEST(PatternedBlackouts, SkipsZeroDurations) {
  PatternedBlackouts bl(100, {10, 0, 0, 10}, TimeNs{0});
  EXPECT_EQ(*bl.next_blackout(0, 10), (Interval{300, 310}));
}

TEST(PatternedBlackouts, AllZeroMeansNone) {
  PatternedBlackouts bl(100, {0, 0}, TimeNs{0});
  EXPECT_FALSE(bl.next_blackout(0, 0).has_value());
}

TEST(PatternedBlackouts, PerRankPhases) {
  PatternedBlackouts bl(100, {20, 5}, std::vector<TimeNs>{0, 50});
  EXPECT_EQ(bl.next_blackout(0, 0)->begin, 0);
  EXPECT_EQ(bl.next_blackout(1, 0)->begin, 50);
  EXPECT_EQ(*bl.next_blackout(1, 71), (Interval{150, 155}));
}

TEST(PatternedBlackouts, SingleDurationMatchesPeriodic) {
  PatternedBlackouts pat(100, {10}, TimeNs{7});
  sim::PeriodicBlackouts per(100, 10, TimeNs{7});
  for (TimeNs t : {TimeNs{0}, TimeNs{7}, TimeNs{17}, TimeNs{18}, TimeNs{250}}) {
    const auto a = pat.next_blackout(0, t);
    const auto b = per.next_blackout(0, t);
    ASSERT_EQ(a.has_value(), b.has_value()) << t;
    if (a) EXPECT_EQ(*a, *b) << t;
  }
}

TEST(Incremental, SpecEnablement) {
  ckpt::IncrementalSpec inc;
  EXPECT_FALSE(inc.enabled());  // full_every = 1
  inc.full_every = 4;
  inc.delta_fraction = 0.25;
  EXPECT_TRUE(inc.enabled());
  inc.delta_fraction = 1.0;
  EXPECT_FALSE(inc.enabled());
}

TEST(Incremental, CoordinatedBlackoutsAlternate) {
  net::MachineModel m = net::infiniband_system();
  m.ckpt_bytes_per_node = 64_MiB;
  ckpt::CoordinatedConfig cfg;
  cfg.interval = 600_s;
  cfg.incremental.full_every = 4;
  cfg.incremental.delta_fraction = 0.25;
  const ckpt::Artifacts a = ckpt::prepare_coordinated(cfg, m, 64);
  EXPECT_GT(a.blackout_full, a.blackout_delta);
  EXPECT_GT(a.blackout_delta, a.coordination_time);
  // mean = (full + 3*delta) / 4
  EXPECT_EQ(a.blackout, (a.blackout_full + 3 * a.blackout_delta) / 4);
  // Schedule really alternates: first interval long, second short.
  const auto first = a.schedule->next_blackout(0, 0);
  const auto second = a.schedule->next_blackout(0, first->end);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->duration(), a.blackout_full);
  EXPECT_EQ(second->duration(), a.blackout_delta);
}

TEST(Incremental, ReducesDutyCycle) {
  net::MachineModel m = net::infiniband_system();
  m.ckpt_bytes_per_node = 64_MiB;
  ckpt::UncoordinatedConfig base;
  base.interval = 600_s;
  ckpt::UncoordinatedConfig inc = base;
  inc.incremental.full_every = 10;
  inc.incremental.delta_fraction = 0.1;
  const auto a0 = ckpt::prepare_uncoordinated(base, m, 64);
  const auto a1 = ckpt::prepare_uncoordinated(inc, m, 64);
  EXPECT_LT(a1.duty_cycle(), 0.25 * a0.duty_cycle());
  EXPECT_EQ(a1.blackout_full, a0.blackout);
}

TEST(Incremental, InvalidSpecThrows) {
  net::MachineModel m = net::infiniband_system();
  m.ckpt_bytes_per_node = 64_MiB;
  ckpt::CoordinatedConfig cfg;
  cfg.interval = 600_s;
  cfg.incremental.full_every = 0;
  EXPECT_THROW(ckpt::prepare_coordinated(cfg, m, 64), std::invalid_argument);
  cfg.incremental.full_every = 4;
  cfg.incremental.delta_fraction = 1.5;
  EXPECT_THROW(ckpt::prepare_coordinated(cfg, m, 64), std::invalid_argument);
}

TEST(Incremental, StudyEndToEndReducesOverhead) {
  core::StudyConfig cfg;
  cfg.machine = net::infiniband_system();
  cfg.machine.ckpt_bytes_per_node = 4_MiB;
  cfg.machine.pfs_bw_bytes_per_s = cfg.machine.node_bw_bytes_per_s * 1e7;
  cfg.workload = "halo3d";
  cfg.params.ranks = 27;
  cfg.params.iterations = 40;
  cfg.params.compute = 1'000'000;
  cfg.params.bytes = 4096;
  cfg.protocol.kind = ckpt::ProtocolKind::kCoordinated;
  cfg.protocol.fixed_interval = 10'000'000;
  const core::Breakdown full = core::run_study(cfg);
  cfg.protocol.incremental.full_every = 5;
  cfg.protocol.incremental.delta_fraction = 0.2;
  const core::Breakdown inc = core::run_study(cfg);
  EXPECT_LT(inc.slowdown, full.slowdown);
  EXPECT_GT(inc.slowdown, 1.0);
}

}  // namespace
}  // namespace chksim
