// Engine semantics tests with hand-computed LogGOPS timings.
#include "chksim/sim/engine.hpp"

#include <gtest/gtest.h>

#include "chksim/sim/program.hpp"

namespace chksim::sim {
namespace {

// Simple parameter set for hand calculation: latency 1000, overhead 100,
// gap 200, no per-byte costs, eager only.
LogGOPSParams simple_net() {
  LogGOPSParams p;
  p.L = 1000;
  p.o = 100;
  p.g = 200;
  p.G = 0.0;
  p.O = 0.0;
  p.S = 1 << 30;
  return p;
}

TEST(Program, FinalizeComputesStats) {
  Program p(2);
  const OpRef c = p.calc(0, 50);
  const OpRef s = p.send(0, 1, 8, 1);
  p.depends(c, s);
  p.recv(1, 0, 8, 1);
  const ProgramStats st = p.finalize();
  EXPECT_EQ(st.ops, 3);
  EXPECT_EQ(st.calcs, 1);
  EXPECT_EQ(st.sends, 1);
  EXPECT_EQ(st.recvs, 1);
  EXPECT_EQ(st.edges, 1);
  EXPECT_EQ(st.bytes_sent, 8);
  EXPECT_EQ(st.calc_total, 50);
  EXPECT_EQ(st.max_depth, 2);
}

TEST(Program, DoubleFinalizeThrows) {
  Program p(1);
  p.calc(0, 1);
  p.finalize();
  EXPECT_THROW(p.finalize(), std::logic_error);
}

TEST(Program, CycleDetectionThrows) {
  Program p(1);
  const OpRef a = p.calc(0, 1);
  const OpRef b = p.calc(0, 1);
  p.depends(a, b);
  p.depends(b, a);
  EXPECT_THROW(p.finalize(), std::logic_error);
}

TEST(Program, DuplicateEdgesAreDeduplicated) {
  Program p(1);
  const OpRef a = p.calc(0, 1);
  const OpRef b = p.calc(0, 1);
  p.depends(a, b);
  p.depends(a, b);
  const ProgramStats st = p.finalize();
  EXPECT_EQ(st.edges, 1);
  EngineConfig cfg;
  const RunResult r = run_program(p, cfg);
  EXPECT_TRUE(r.completed);
}

TEST(Program, TagAllocatorIsMonotonic) {
  Program p(1);
  const Tag a = p.allocate_tags(3);
  const Tag b = p.allocate_tags(1);
  EXPECT_GE(b, a + 3);
}

TEST(Program, CheckMatchingReportsImbalance) {
  Program p(2);
  p.send(0, 1, 8, 7);
  EXPECT_NE(p.check_matching().find("unmatched send"), std::string::npos);
  Program q(2);
  q.send(0, 1, 8, 7);
  q.recv(1, 0, 8, 7);
  EXPECT_TRUE(q.check_matching().empty());
}

TEST(Engine, RequiresFinalizedProgram) {
  Program p(1);
  p.calc(0, 1);
  EngineConfig cfg;
  EXPECT_THROW(run_program(p, cfg), std::logic_error);
}

TEST(Engine, CalcChain) {
  Program p(1);
  const OpRef a = p.calc(0, 10);
  const OpRef b = p.calc(0, 20);
  const OpRef c = p.calc(0, 30);
  p.depends(a, b);
  p.depends(b, c);
  p.finalize();
  EngineConfig cfg;
  cfg.net = simple_net();
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 60);
  EXPECT_EQ(r.ranks[0].cpu_busy, 60);
  EXPECT_EQ(r.ranks[0].calcs, 3);
}

TEST(Engine, IndependentCalcsSerializeOnCpu) {
  Program p(1);
  p.calc(0, 10);
  p.calc(0, 20);
  p.finalize();
  EngineConfig cfg;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 30);
}

TEST(Engine, PingTiming) {
  Program p(2);
  p.send(0, 1, 8, 1);
  p.recv(1, 0, 8, 1);
  p.finalize();
  EngineConfig cfg;
  cfg.net = simple_net();
  cfg.record_op_finish = true;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  // Send: CPU [0,100]; arrival 100 + L = 1100; recv CPU [1100,1200].
  EXPECT_EQ(r.op_finish_of(0)[0], 100);
  EXPECT_EQ(r.op_finish_of(1)[0], 1200);
  EXPECT_EQ(r.makespan, 1200);
  EXPECT_EQ(r.ranks[1].recv_wait, 1100);  // posted at 0, data at 1100
}

TEST(Engine, PingPongTiming) {
  Program p(2);
  const OpRef s0 = p.send(0, 1, 8, 1);
  const OpRef r0 = p.recv(0, 1, 8, 2);
  p.depends(s0, r0);
  const OpRef r1 = p.recv(1, 0, 8, 1);
  const OpRef s1 = p.send(1, 0, 8, 2);
  p.depends(r1, s1);
  p.finalize();
  EngineConfig cfg;
  cfg.net = simple_net();
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  // r1 done at 1200; s1 CPU [1200,1300]; arrival 2300; r0 done 2400.
  EXPECT_EQ(r.makespan, 2400);
}

TEST(Engine, EarlyMessageHasNoRecvWait) {
  Program p(2);
  p.send(0, 1, 8, 1);
  const OpRef c = p.calc(1, 5000);
  const OpRef rv = p.recv(1, 0, 8, 1);
  p.depends(c, rv);
  p.finalize();
  EngineConfig cfg;
  cfg.net = simple_net();
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  // Message arrives at 1100 while rank 1 computes until 5000; no wait.
  EXPECT_EQ(r.ranks[1].recv_wait, 0);
  EXPECT_EQ(r.makespan, 5100);  // recv overhead after calc
}

TEST(Engine, NicGapSerializesSends) {
  Program p(3);
  const OpRef s0 = p.send(0, 1, 8, 1);
  const OpRef s1 = p.send(0, 2, 8, 1);
  p.depends(s0, s1);
  p.recv(1, 0, 8, 1);
  p.recv(2, 0, 8, 1);
  p.finalize();
  EngineConfig cfg;
  cfg.net = simple_net();
  cfg.record_op_finish = true;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  // First send CPU [0,100], nic free at 100+200=300. Second send ready at
  // 100 but NIC gap delays start to 300: CPU [300,400], arrival 1400.
  EXPECT_EQ(r.op_finish_of(0)[1], 400);
  EXPECT_EQ(r.op_finish_of(2)[0], 1500);
}

TEST(Engine, PerByteGapAndOverhead) {
  LogGOPSParams net = simple_net();
  net.G = 1.0;   // 1 ns per byte on the wire
  net.O = 0.5;   // 0.5 ns per byte of CPU
  Program p(2);
  p.send(0, 1, 1000, 1);
  p.recv(1, 0, 1000, 1);
  p.finalize();
  EngineConfig cfg;
  cfg.net = net;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  // send cpu = o + O*s = 100+500 = 600; arrival = 600 + L + G*s = 2600;
  // recv cpu 600 -> 3200.
  EXPECT_EQ(r.makespan, 3200);
}

TEST(Engine, RendezvousTiming) {
  LogGOPSParams net = simple_net();
  net.S = 100;  // 1000-byte message goes rendezvous
  Program p(2);
  p.send(0, 1, 1000, 1);
  p.recv(1, 0, 1000, 1);
  p.finalize();
  EngineConfig cfg;
  cfg.net = net;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  // RTS: send CPU [0,100], RTS arrival 1100. Recv posted at 0 -> match 1100.
  // Data arrival = 1100 + (o+L) + o + L + G*s = 1100+1100+100+1000+0 = 3300.
  // Recv CPU -> 3400.
  EXPECT_EQ(r.makespan, 3400);
}

TEST(Engine, RendezvousWaitsForLatePost) {
  LogGOPSParams net = simple_net();
  net.S = 100;
  Program p(2);
  p.send(0, 1, 1000, 1);
  const OpRef c = p.calc(1, 50000);
  const OpRef rv = p.recv(1, 0, 1000, 1);
  p.depends(c, rv);
  p.finalize();
  EngineConfig cfg;
  cfg.net = net;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  // Match at post time 50000; payload 50000+2200 = 52200; recv end 52300.
  EXPECT_EQ(r.makespan, 52300);
}

TEST(Engine, FifoMatchingWithinTag) {
  // Two messages on the same (src, tag); receiver consumes them in order.
  Program p(2);
  const OpRef s0 = p.send(0, 1, 10, 1);
  const OpRef s1 = p.send(0, 1, 20, 1);
  p.depends(s0, s1);
  const OpRef r0 = p.recv(1, 0, 10, 1);
  const OpRef r1 = p.recv(1, 0, 20, 1);
  p.depends(r0, r1);
  p.finalize();
  EngineConfig cfg;
  cfg.net = simple_net();
  cfg.record_op_finish = true;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_LT(r.op_finish_of(1)[0], r.op_finish_of(1)[1]);
}

TEST(Engine, TagsSeparateMatching) {
  // Messages with different tags match the right receives regardless of
  // posting order.
  Program p(2);
  const OpRef sA = p.send(0, 1, 8, 5);
  const OpRef sB = p.send(0, 1, 8, 6);
  p.depends(sA, sB);
  // Receiver posts tag 6 first, then tag 5; both must complete.
  const OpRef rB = p.recv(1, 0, 8, 6);
  const OpRef rA = p.recv(1, 0, 8, 5);
  p.depends(rB, rA);
  p.finalize();
  EngineConfig cfg;
  cfg.net = simple_net();
  const RunResult r = run_program(p, cfg);
  EXPECT_TRUE(r.completed);
}

TEST(Engine, DeadlockDetected) {
  Program p(2);
  p.recv(1, 0, 8, 1);  // no matching send
  p.finalize();
  EngineConfig cfg;
  const RunResult r = run_program(p, cfg);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("deadlock"), std::string::npos);
  EXPECT_NE(r.error.find("rank 1"), std::string::npos);
}

TEST(Engine, BlackoutDelaysCalc) {
  Program p(1);
  p.calc(0, 100);
  p.finalize();
  ListBlackouts bl({{{50, 70}}});
  EngineConfig cfg;
  cfg.blackouts = &bl;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 120);
  EXPECT_EQ(r.ranks[0].cpu_busy, 100);  // pure work excludes the blackout
}

TEST(Engine, BlackoutDelaysSendAndPropagatesToReceiver) {
  Program p(2);
  p.send(0, 1, 8, 1);
  p.recv(1, 0, 8, 1);
  p.finalize();
  ListBlackouts bl({{{0, 500}}, {}});  // only rank 0 blacked out
  EngineConfig cfg;
  cfg.net = simple_net();
  cfg.blackouts = &bl;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  // Send starts at 500, CPU [500,600], arrival 1600, recv end 1700: rank 0's
  // checkpoint delayed rank 1 even though rank 1 was never blacked out.
  EXPECT_EQ(r.makespan, 1700);
  EXPECT_EQ(r.ranks[1].recv_wait, 1600);
}

TEST(Engine, BlackoutDoesNotDelayWire) {
  // A receiver-side blackout that ends before arrival costs nothing:
  // in-flight data is not paused, only CPU work is.
  Program p(2);
  p.send(0, 1, 8, 1);
  p.recv(1, 0, 8, 1);
  p.finalize();
  ListBlackouts bl({{}, {{200, 900}}});
  EngineConfig cfg;
  cfg.net = simple_net();
  cfg.blackouts = &bl;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 1200);  // same as without blackout
}

TEST(Engine, ReceiverBlackoutDelaysRecvOverhead) {
  Program p(2);
  p.send(0, 1, 8, 1);
  p.recv(1, 0, 8, 1);
  p.finalize();
  ListBlackouts bl({{}, {{1000, 2000}}});
  EngineConfig cfg;
  cfg.net = simple_net();
  cfg.blackouts = &bl;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  // Arrival 1100 inside blackout; recv CPU starts 2000, ends 2100.
  EXPECT_EQ(r.makespan, 2100);
}

// Message-logging tax: flat per-message sender cost.
class FlatTax final : public SendTax {
 public:
  explicit FlatTax(TimeNs send_extra, TimeNs recv_extra = 0)
      : send_extra_(send_extra), recv_extra_(recv_extra) {}
  TimeNs extra_send_cpu(RankId, RankId, Bytes) const override { return send_extra_; }
  TimeNs extra_recv_cpu(RankId, RankId, Bytes) const override { return recv_extra_; }

 private:
  TimeNs send_extra_;
  TimeNs recv_extra_;
};

TEST(Engine, SendTaxInflatesOverheads) {
  Program p(2);
  p.send(0, 1, 8, 1);
  p.recv(1, 0, 8, 1);
  p.finalize();
  FlatTax tax(50, 25);
  EngineConfig cfg;
  cfg.net = simple_net();
  cfg.tax = &tax;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  // Send CPU [0,150]; arrival 1150; recv CPU 100+25 -> 1275.
  EXPECT_EQ(r.makespan, 1275);
}

TEST(Engine, StatsCountsAndBytes) {
  Program p(2);
  const OpRef s = p.send(0, 1, 4096, 1);
  const OpRef c = p.calc(0, 10);
  p.depends(s, c);
  p.recv(1, 0, 4096, 1);
  p.finalize();
  EngineConfig cfg;
  cfg.net = simple_net();
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.ranks[0].sends, 1);
  EXPECT_EQ(r.ranks[0].calcs, 1);
  EXPECT_EQ(r.ranks[0].bytes_sent, 4096);
  EXPECT_EQ(r.ranks[1].recvs, 1);
  EXPECT_EQ(r.ops_executed, 3);
  EXPECT_GT(r.events_processed, 0);
}

TEST(Engine, DeterministicAcrossRuns) {
  Program p(4);
  for (RankId r = 0; r < 4; ++r) {
    const RankId next = (r + 1) % 4;
    const RankId prev = (r + 3) % 4;
    const OpRef s = p.send(r, next, 64, 1);
    const OpRef rv = p.recv(r, prev, 64, 1);
    const OpRef c = p.calc(r, 500);
    p.depends(s, c);
    p.depends(rv, c);
  }
  p.finalize();
  EngineConfig cfg;
  cfg.net = simple_net();
  const RunResult a = run_program(p, cfg);
  const RunResult b = run_program(p, cfg);
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

// Property sweep: a ring exchange completes and its makespan grows with the
// per-hop costs in a sane way across parameter combinations.
class RingParamSweep
    : public ::testing::TestWithParam<std::tuple<int, TimeNs, TimeNs>> {};

TEST_P(RingParamSweep, CompletesAndScales) {
  const auto [ranks, latency, overhead] = GetParam();
  Program p(ranks);
  const Tag tag = p.allocate_tags();
  for (RankId r = 0; r < ranks; ++r) {
    p.send(r, (r + 1) % ranks, 8, tag);
    p.recv(r, (r + ranks - 1) % ranks, 8, tag);
  }
  p.finalize();
  EngineConfig cfg;
  cfg.net = simple_net();
  cfg.net.L = latency;
  cfg.net.o = overhead;
  const RunResult r = run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  // One hop: send o + L + recv o is a lower bound on makespan.
  EXPECT_GE(r.makespan, latency + 2 * overhead);
  EXPECT_EQ(r.ops_executed, static_cast<std::int64_t>(2 * ranks));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RingParamSweep,
    ::testing::Combine(::testing::Values(2, 3, 8, 64),
                       ::testing::Values<TimeNs>(100, 5000),
                       ::testing::Values<TimeNs>(10, 1000)));

}  // namespace
}  // namespace chksim::sim
