// Tests for the compact (SoA + implicit-chain) Program representation and
// the iteration-template API (begin_repeat / repeat).
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "chksim/sim/engine.hpp"
#include "chksim/sim/goal.hpp"

namespace chksim::sim {
namespace {

EngineConfig test_config() {
  EngineConfig cfg;
  cfg.net.L = 1000;
  cfg.net.o = 100;
  cfg.net.g = 200;
  cfg.net.G = 0.1;
  cfg.net.S = 4096;
  return cfg;
}

TEST(ProgramCompact, ZeroOpProgramRuns) {
  Program p(4);
  const ProgramStats st = p.finalize();
  EXPECT_EQ(st.ops, 0);
  EXPECT_EQ(st.edges, 0);
  const RunResult r = run_program(p, test_config());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 0);
  EXPECT_EQ(r.ops_executed, 0);
}

TEST(ProgramCompact, EmptyRankAmongBusyRanks) {
  // Rank 1 has no ops at all; the others communicate around it.
  Program p(3);
  const Tag tag = p.allocate_tags();
  const OpRef s = p.send(0, 2, 64, tag);
  const OpRef rv = p.recv(2, 0, 64, tag);
  const OpRef c = p.calc(2, 500);
  p.depends(rv, c);
  (void)s;
  p.finalize();
  EXPECT_EQ(p.rank_size(0), 1u);
  EXPECT_EQ(p.rank_size(1), 0u);
  EXPECT_EQ(p.rank_size(2), 2u);
  const RankOpsView empty = p.rank_view(1);
  EXPECT_EQ(empty.count, 0u);
  const RunResult r = run_program(p, test_config());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.ops_executed, 3);
}

TEST(ProgramCompact, SelfSendThrows) {
  Program p(2);
  EXPECT_THROW(p.send(0, 0, 64, 1), std::invalid_argument);
  EXPECT_THROW(p.recv(1, 1, 64, 1), std::invalid_argument);
  EXPECT_THROW(p.send(0, 5, 64, 1), std::invalid_argument);
  EXPECT_THROW(p.recv(0, -1, 64, 1), std::invalid_argument);
}

TEST(ProgramCompact, CheckMatchingReportsMismatches) {
  Program p(2);
  const Tag tag = p.allocate_tags(2);
  p.send(0, 1, 64, tag);                // no matching recv
  p.recv(0, 1, 128, tag + 1);           // no matching send
  const auto problems = p.check_matching();
  EXPECT_FALSE(problems.empty());

  Program ok(2);
  const Tag t2 = ok.allocate_tags();
  ok.send(0, 1, 64, t2);
  ok.recv(1, 0, 64, t2);
  EXPECT_TRUE(ok.check_matching().empty());
}

TEST(ProgramCompact, ChainAndExplicitSuccessorsIterateInOrder) {
  // a -> b -> c is an implicit chain; a -> d is explicit (forward skip) and
  // d -> b would be backward. for_each_successor must yield ascending order.
  Program p(1);
  const OpRef a = p.calc(0, 1);
  const OpRef b = p.calc(0, 2);
  const OpRef c = p.calc(0, 3);
  const OpRef d = p.calc(0, 4);
  p.depends(a, b);
  p.depends(b, c);
  p.depends(a, d);
  p.finalize();
  const RankOpsView v = p.rank_view(0);
  std::vector<OpIndex> succ_of_a;
  v.for_each_successor(0, [&](OpIndex to) { succ_of_a.push_back(to); });
  ASSERT_EQ(succ_of_a.size(), 2u);
  EXPECT_EQ(succ_of_a[0], 1u);  // chain successor first (b)
  EXPECT_EQ(succ_of_a[1], 3u);  // then the explicit forward edge (d)
  EXPECT_EQ(v.successor_count(0), 2u);
  (void)c;
}

TEST(ProgramCompact, DuplicateDependsCollapses) {
  Program p(1);
  const OpRef a = p.calc(0, 1);
  const OpRef b = p.calc(0, 2);
  p.depends(a, b);
  p.depends(a, b);  // duplicate of the chain edge
  const ProgramStats st = p.finalize();
  EXPECT_EQ(st.edges, 1);
}

TEST(ProgramCompact, TagAllocationOverflowThrows) {
  Program p(2);
  p.allocate_tags(1000);
  EXPECT_THROW(p.allocate_tags(std::numeric_limits<Tag>::max() - 500),
               std::overflow_error);
}

// --- iteration templates ---------------------------------------------------

/// One ring-ish iteration with a cross-iteration serialization edge.
void build_iteration(Program& p, std::vector<OpRef>& last) {
  const Tag tag = p.allocate_tags();
  for (RankId r = 0; r < 2; ++r) {
    const OpRef c = p.calc(r, 1000 + 10 * r);
    if (last[static_cast<std::size_t>(r)].valid())
      p.depends(last[static_cast<std::size_t>(r)], c);
    const OpRef s = p.send(r, 1 - r, 256, tag);
    const OpRef rv = p.recv(r, 1 - r, 256, tag);
    p.depends(c, s);
    p.depends(c, rv);
    last[static_cast<std::size_t>(r)] = rv;
  }
}

TEST(ProgramRepeat, MatchesHandUnrolledLoop) {
  const int iterations = 7;

  Program manual(2);
  {
    std::vector<OpRef> last(2);
    for (int it = 0; it < iterations; ++it) build_iteration(manual, last);
  }
  Program templ(2);
  {
    std::vector<OpRef> last(2);
    build_iteration(templ, last);
    templ.begin_repeat();
    build_iteration(templ, last);
    templ.repeat(iterations - 2, &last);
  }
  const ProgramStats sm = manual.finalize();
  const ProgramStats st = templ.finalize();
  EXPECT_EQ(sm.ops, st.ops);
  EXPECT_EQ(sm.edges, st.edges);
  EXPECT_EQ(sm.sends, st.sends);

  // Structural identity: the GOAL export (ops, tags, and dependency lists)
  // must be byte-identical, not merely equivalent.
  EXPECT_EQ(to_goal(manual), to_goal(templ));

  const RunResult rm = run_program(manual, test_config());
  const RunResult rt = run_program(templ, test_config());
  ASSERT_TRUE(rm.completed);
  ASSERT_TRUE(rt.completed);
  EXPECT_EQ(rm.makespan, rt.makespan);
  EXPECT_EQ(rm.events_processed, rt.events_processed);
}

TEST(ProgramRepeat, CarryRefsPointAtLastCopy) {
  Program p(1);
  std::vector<OpRef> last(1);
  auto iter = [&] {
    const OpRef c = p.calc(0, 100);
    if (last[0].valid()) p.depends(last[0], c);
    last[0] = c;
  };
  iter();
  p.begin_repeat();
  iter();
  p.repeat(3, &last);
  // 5 ops total; the carried ref must name the final copy.
  EXPECT_EQ(last[0].index, 4u);
  const OpRef tail = p.calc(0, 7);
  p.depends(last[0], tail);
  const ProgramStats st = p.finalize();
  EXPECT_EQ(st.ops, 6);
  const RunResult r = run_program(p, test_config());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 507);  // fully serialized: 5 * 100 + 7
}

TEST(ProgramRepeat, TooDeepInEdgeThrows) {
  // An in-edge reaching more than one block length before the block cannot
  // be replicated (copy k would need iteration k-2's ops).
  Program p(1);
  const OpRef old = p.calc(0, 1);
  p.calc(0, 2);
  p.begin_repeat();
  const OpRef in_block = p.calc(0, 3);
  p.depends(old, in_block);  // reaches 2 ops back; block length is 1
  EXPECT_THROW(p.repeat(2), std::invalid_argument);
}

TEST(ProgramRepeat, MisuseThrows) {
  Program p(1);
  EXPECT_THROW(p.repeat(1), std::logic_error);  // no open block
  p.begin_repeat();
  EXPECT_THROW(p.begin_repeat(), std::logic_error);  // nested
  EXPECT_THROW(p.finalize(), std::logic_error);      // open block
  p.calc(0, 1);
  p.repeat(0);  // zero copies is a no-op close
  const ProgramStats st = p.finalize();
  EXPECT_EQ(st.ops, 1);
}

TEST(ProgramRepeat, RebasesTagsAcrossCopies) {
  // Two ranks ping-pong with a fresh tag per iteration; FIFO matching per
  // (src, tag) must remain unambiguous after template instantiation.
  Program p(2);
  std::vector<OpRef> last(2);
  auto iter = [&] {
    const Tag tag = p.allocate_tags();
    const OpRef s = p.send(0, 1, 64, tag);
    const OpRef rv = p.recv(1, 0, 64, tag);
    if (last[0].valid()) p.depends(last[0], s);
    if (last[1].valid()) p.depends(last[1], rv);
    last[0] = s;
    last[1] = rv;
  };
  iter();
  p.begin_repeat();
  iter();
  p.repeat(8, &last);
  p.finalize();
  EXPECT_TRUE(p.check_matching().empty());
  // All ten tags distinct.
  const RankOpsView v = p.rank_view(0);
  std::vector<Tag> tags;
  for (OpIndex i = 0; i < v.count; ++i) tags.push_back(v.tag[i]);
  std::sort(tags.begin(), tags.end());
  EXPECT_EQ(std::unique(tags.begin(), tags.end()), tags.end());
  const RunResult r = run_program(p, test_config());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.ops_executed, 20);
}

}  // namespace
}  // namespace chksim::sim
