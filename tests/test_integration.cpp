// Cross-module integration tests: the experiment pipelines exercised end to
// end at small scale, asserting the *shapes* the reconstruction targets
// (see DESIGN.md section 3 and EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "chksim/analytic/coordination.hpp"
#include "chksim/analytic/daly.hpp"
#include "chksim/coll/collectives.hpp"
#include "chksim/core/failure_study.hpp"
#include "chksim/core/scale_model.hpp"
#include "chksim/noise/noise.hpp"

namespace chksim {
namespace {

using namespace chksim::literals;

// E1's claim at test scale: the engine-simulated dissemination barrier
// matches the LogP closed form exactly when there is no skew.
TEST(Integration, SimulatedBarrierMatchesClosedForm) {
  for (int ranks : {4, 16, 64, 256}) {
    sim::Program p(ranks);
    coll::barrier_dissemination(p, coll::full_group(ranks));
    p.finalize();
    sim::EngineConfig cfg;
    cfg.net = net::infiniband_system().net;
    const sim::RunResult r = sim::run_program(p, cfg);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.makespan,
              analytic::barrier_dissemination_cost(cfg.net, ranks))
        << "ranks=" << ranks;
  }
}

core::StudyConfig scaled_study(const char* wl, int ranks, TimeNs interval,
                               double duty) {
  core::StudyConfig cfg;
  cfg.machine = net::infiniband_system();
  cfg.machine.ckpt_bytes_per_node = static_cast<Bytes>(
      duty * units::to_seconds(interval) * cfg.machine.node_bw_bytes_per_s);
  cfg.machine.pfs_bw_bytes_per_s = cfg.machine.node_bw_bytes_per_s * 1e7;
  cfg.workload = wl;
  cfg.params.ranks = ranks;
  cfg.params.iterations = 40;
  cfg.params.compute = 1_ms;
  cfg.params.bytes = 8_KiB;
  cfg.protocol.fixed_interval = interval;
  return cfg;
}

// E2/E3's central contrast: on a coupled workload at equal duty cycle,
// random-phase (uncoordinated) blackouts propagate worse than aligned
// (coordinated) ones; on EP they are equivalent.
TEST(Integration, UnalignedBlackoutsAmplifyOnCoupledWorkloads) {
  core::StudyConfig cfg = scaled_study("halo3d", 64, 10_ms, 0.10);
  cfg.protocol.kind = ckpt::ProtocolKind::kCoordinated;
  const core::Breakdown co = core::run_study(cfg);
  cfg.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
  const core::Breakdown un = core::run_study(cfg);
  EXPECT_GT(un.slowdown, co.slowdown);
  EXPECT_GT(un.propagation_factor, 1.1);
}

TEST(Integration, EpIsProtocolAgnostic) {
  core::StudyConfig cfg = scaled_study("ep", 64, 10_ms, 0.10);
  cfg.protocol.kind = ckpt::ProtocolKind::kCoordinated;
  const core::Breakdown co = core::run_study(cfg);
  cfg.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
  const core::Breakdown un = core::run_study(cfg);
  // Independent ranks: both protocols cost about the duty cycle. The
  // uncoordinated run can exceed the coordinated one by at most one extra
  // blackout on the worst-phased rank (the makespan is a max over ranks),
  // never by a propagation-style amplification.
  EXPECT_NEAR(un.slowdown, co.slowdown, un.duty_cycle + 0.02);
}

// E5's claim: a single rank's blackout delays a coupled application by
// roughly the blackout, and an EP application by (almost) nothing global.
TEST(Integration, SingleBlackoutPropagationByCoupling) {
  const int ranks = 64;
  for (const char* wl : {"allreduce", "ep"}) {
    workload::StdParams params;
    params.ranks = ranks;
    params.iterations = 20;
    params.compute = 1_ms;
    params.bytes = 1_KiB;
    sim::Program p = workload::make_workload(wl, params);
    p.finalize();
    sim::EngineConfig base;
    base.net = net::infiniband_system().net;
    const sim::RunResult r0 = sim::run_program(p, base);
    const auto bl = noise::make_single_blackout(ranks, 7, {r0.makespan / 2,
                                                           r0.makespan / 2 + 5_ms});
    sim::EngineConfig noisy = base;
    noisy.blackouts = bl.get();
    const sim::RunResult r1 = sim::run_program(p, noisy);
    ASSERT_TRUE(r1.completed);
    const TimeNs delay = r1.makespan - r0.makespan;
    if (std::string(wl) == "allreduce") {
      EXPECT_GT(delay, 4_ms) << wl;  // nearly the whole blackout propagates
    } else {
      EXPECT_LE(delay, 5_ms + 1_ms) << wl;  // at most the victim's own delay
    }
  }
}

// E7's claim: the Monte-Carlo optimum interval is near Daly's.
TEST(Integration, McOptimumNearDaly) {
  const double M = 3600, delta = 30, R = 60, work = 100'000;
  const double tau_daly = analytic::daly_interval(delta, M);
  auto eff_at = [&](double tau) {
    ckpt::RecoveryParams rp;
    rp.kind = ckpt::ProtocolKind::kCoordinated;
    rp.work_seconds = work;
    rp.slowdown = 1.0 + delta / tau;
    rp.interval_seconds = tau;
    rp.restart_seconds = R;
    fault::Exponential dist(M);
    return ckpt::simulate_makespan(rp, dist, 300, 9).efficiency;
  };
  const double at_daly = eff_at(tau_daly);
  EXPECT_GT(at_daly, eff_at(tau_daly / 6) - 0.01);
  EXPECT_GT(at_daly, eff_at(tau_daly * 6) - 0.01);
}

// E8's claim, through the protocol layer: coordinated write time blows up
// with scale while uncoordinated stays flat, on a contended PFS.
TEST(Integration, StorageAsymmetryAppearsInArtifacts) {
  const net::MachineModel m = net::infiniband_system();
  ckpt::CoordinatedConfig c;
  c.interval = 3600_s;
  ckpt::UncoordinatedConfig u;
  u.interval = 3600_s;
  const auto c1 = ckpt::prepare_coordinated(c, m, 256);
  const auto c2 = ckpt::prepare_coordinated(c, m, 8192);
  const auto u1 = ckpt::prepare_uncoordinated(u, m, 256);
  const auto u2 = ckpt::prepare_uncoordinated(u, m, 8192);
  EXPECT_GT(static_cast<double>(c2.write_time) / static_cast<double>(c1.write_time),
            10.0);
  EXPECT_LT(static_cast<double>(u2.write_time) / static_cast<double>(u1.write_time),
            1.5);
}

// E12's pipeline: measured kappa feeds the analytic scale model, and the
// efficiency ordering it produces is internally consistent.
TEST(Integration, ScaleModelConsumesMeasuredKappa) {
  core::StudyConfig cfg = scaled_study("halo3d", 64, 10_ms, 0.08);
  cfg.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
  const core::Breakdown b = core::run_study(cfg);
  ASSERT_GT(b.propagation_factor, 0.0);

  core::ScaleModelConfig sm;
  sm.machine = net::exascale_projection();
  sm.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
  sm.protocol.interval_policy = ckpt::IntervalPolicy::kDaly;
  // At 2^14 nodes x 32 GiB the PFS cannot absorb the load (the I/O wall,
  // tested elsewhere); route through the burst buffer here.
  sm.protocol.tier = storage::StorageTier::kBurstBuffer;
  sm.kappa = b.propagation_factor;
  sm.trials = 40;
  const auto pts = core::efficiency_sweep(sm, {1 << 10, 1 << 14});
  EXPECT_GT(pts[0].efficiency, pts[1].efficiency);
  EXPECT_GT(pts[1].efficiency, 0.0);
}

// Noise-equivalence (E6): with the budget fixed, large unaligned detours
// cost at least as much as fine-grained ones on a coupled workload.
TEST(Integration, AmplitudeHurtsAtEqualBudget) {
  workload::StdParams params;
  params.ranks = 64;
  params.iterations = 40;
  params.compute = 1_ms;
  params.bytes = 8_KiB;
  sim::Program p = workload::make_workload("halo3d", params);
  p.finalize();
  sim::EngineConfig base;
  base.net = net::infiniband_system().net;

  auto slowdown_at = [&](TimeNs period, TimeNs duration) {
    noise::PeriodicNoiseConfig n;
    n.period = period;
    n.duration = duration;
    n.aligned = false;
    n.seed = 31;
    const auto sched = noise::make_periodic_noise(64, n);
    return noise::measure_amplification(p, base, *sched,
                                        noise::injected_fraction(n))
        .slowdown;
  };
  const double fine = slowdown_at(1_ms, 20_us);
  const double coarse = slowdown_at(50_ms, 1_ms);
  EXPECT_GE(coarse, fine - 0.01);
}

// Full pipeline determinism: identical configs => identical results through
// study + failure model.
TEST(Integration, FullPipelineDeterministic) {
  core::FailureStudyConfig cfg;
  cfg.study = scaled_study("hpccg", 27, 10_ms, 0.08);
  cfg.study.protocol.kind = ckpt::ProtocolKind::kHierarchical;
  cfg.study.protocol.cluster_size = 9;
  cfg.study.protocol.log_per_message = 1_us;
  cfg.work_seconds = 3600;
  cfg.trials = 40;
  const auto a = core::run_failure_study(cfg);
  const auto b = core::run_failure_study(cfg);
  EXPECT_DOUBLE_EQ(a.makespan.mean_seconds, b.makespan.mean_seconds);
  EXPECT_EQ(a.breakdown.perturbed_makespan, b.breakdown.perturbed_makespan);
}

}  // namespace
}  // namespace chksim
