// Noise study: how does an application's communication structure determine
// its sensitivity to perturbation?
//
//   $ ./example_noise_study [ranks]
//
// Injects the same 2% unavailability budget at three granularities into
// several workloads and reports the amplification factor — the bridge
// between the OS-noise literature and checkpointing-as-noise.
#include <cstdlib>
#include <iostream>

#include "chksim/net/machines.hpp"
#include "chksim/noise/noise.hpp"
#include "chksim/support/table.hpp"
#include "chksim/workload/workloads.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;

  const int ranks = argc > 1 ? std::atoi(argv[1]) : 128;
  if (ranks < 2) {
    std::cerr << "usage: " << argv[0] << " [ranks>=2]\n";
    return 1;
  }

  const net::MachineModel machine = net::infiniband_system();
  std::cout << "2% unavailability budget on " << ranks
            << " ranks, random phases, machine=" << machine.name << "\n\n";

  Table t({"workload", "period", "detour", "slowdown", "amplification"});
  for (const char* wl : {"ep", "halo3d", "allreduce", "sweep2d"}) {
    workload::StdParams params;
    params.ranks = ranks;
    params.iterations = 40;
    params.compute = 1_ms;
    params.bytes = 8_KiB;
    sim::Program program = workload::make_workload(wl, params);
    program.finalize();
    sim::EngineConfig base;
    base.net = machine.net;

    struct Pt {
      TimeNs period, duration;
    };
    for (const Pt pt : {Pt{500_us, 10_us}, Pt{10_ms, 200_us}, Pt{100_ms, 2_ms}}) {
      noise::PeriodicNoiseConfig cfg;
      cfg.period = pt.period;
      cfg.duration = pt.duration;
      cfg.aligned = false;
      cfg.seed = 23;
      const auto sched = noise::make_periodic_noise(ranks, cfg);
      const auto rep = noise::measure_amplification(program, base, *sched,
                                                    noise::injected_fraction(cfg));
      char s1[32], s2[32];
      std::snprintf(s1, sizeof s1, "%.4f", rep.slowdown);
      std::snprintf(s2, sizeof s2, "%.2f", rep.amplification);
      t.row() << wl << units::format_time(pt.period)
              << units::format_time(pt.duration) << s1 << s2;
    }
  }
  std::cout << t.to_ascii()
            << "\nAmplification ~1: the application absorbs nothing but adds "
               "nothing;\n>1: dependencies amplify the injected delays "
               "(checkpointing behaves like the\nlowest-frequency, "
               "highest-amplitude row).\n";
  return 0;
}
