// Replay a GOAL trace file through the engine, optionally with noise or a
// checkpoint schedule — the path for studying real application traces.
//
//   $ ./example_replay_goal trace.goal [--machine infiniband]
//         [--ckpt-interval-ms 0] [--ckpt-duty 0.1] [--export]
//
// With --export and no positional argument, emits an example GOAL trace
// (a small halo exchange) to stdout instead, so
//   $ ./example_replay_goal --export > demo.goal
//   $ ./example_replay_goal demo.goal --ckpt-interval-ms 10
// is a self-contained round trip.
#include <fstream>
#include <iostream>
#include <sstream>

#include "chksim/net/machines.hpp"
#include "chksim/sim/engine.hpp"
#include "chksim/sim/goal.hpp"
#include "chksim/support/cli.hpp"
#include "chksim/workload/workloads.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;

  Cli cli;
  cli.flag("machine", "infiniband", "machine preset")
      .flag("ckpt-interval-ms", "0", "coordinated checkpoint interval (0 = none)")
      .flag("ckpt-duty", "0.1", "checkpoint duty cycle")
      .flag("export", "false", "emit a demo GOAL trace to stdout and exit");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    return 1;
  }

  try {
    if (cli.get_bool("export")) {
      workload::Halo2dConfig demo;
      demo.ranks = 4;
      demo.iterations = 2;
      demo.compute_per_iter = 500'000;
      demo.halo_bytes = 4096;
      sim::Program p = workload::make_halo2d(demo);
      p.finalize();
      std::cout << sim::to_goal(p);
      return 0;
    }
    if (cli.positional().empty()) {
      std::cerr << "usage: " << argv[0] << " <trace.goal> [flags] | --export\n";
      return 1;
    }
    std::ifstream in(cli.positional()[0]);
    if (!in) {
      std::cerr << "cannot open " << cli.positional()[0] << "\n";
      return 1;
    }
    sim::Program program = sim::read_goal(in);
    const sim::ProgramStats st = program.finalize();
    const std::string mismatch = program.check_matching();
    if (!mismatch.empty()) {
      std::cerr << "warning: unmatched communication in trace:\n" << mismatch;
    }

    sim::EngineConfig cfg;
    cfg.net = net::machine_by_name(cli.get("machine")).net;
    const sim::RunResult base = sim::run_program(program, cfg);
    if (!base.completed) {
      std::cerr << "trace did not complete: " << base.error << "\n";
      return 1;
    }
    std::cout << "ranks        : " << program.ranks() << "\n"
              << "ops          : " << st.ops << " (" << st.sends << " msgs, "
              << units::format_bytes(st.bytes_sent) << ")\n"
              << "makespan     : " << units::format_time(base.makespan) << "\n"
              << "total wait   : " << units::format_time(base.total_recv_wait())
              << "\n";

    const TimeNs interval = cli.get_int("ckpt-interval-ms") * units::kMillisecond;
    if (interval > 0) {
      const auto duration =
          static_cast<TimeNs>(cli.get_double("ckpt-duty") * static_cast<double>(interval));
      sim::PeriodicBlackouts ckpt(interval, duration, interval);
      sim::EngineConfig pert = cfg;
      pert.blackouts = &ckpt;
      const sim::RunResult r = sim::run_program(program, pert);
      std::cout << "with coordinated checkpoints every "
                << units::format_time(interval) << " (" << units::format_time(duration)
                << " each):\n"
                << "makespan     : " << units::format_time(r.makespan) << "  (slowdown "
                << static_cast<double>(r.makespan) / static_cast<double>(base.makespan)
                << ")\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
