// Direct in-DES failure injection: validate the decoupled recovery model
// on one study cell, then replay an explicit failure trace with a Perfetto
// timeline of the failure/rollback/replay episodes.
//
//   $ ./example_direct_failures
//   $ ./example_direct_failures --trace-out failures.json
//
// Part 1 runs core::run_direct_failure_study: the same FailureStudyConfig
// used by the decoupled Monte-Carlo, but with mode = kDirect, so failures
// interrupt the *running* engine (global rollback to the last committed
// snapshot for coordinated checkpointing) and the matched renewal model is
// reported next to the ground truth. Part 2 drives fault::run_with_failures
// by hand against a fixed trace and exports the trace events — load the
// JSON in Perfetto and look at the "failures" track.
#include <iostream>

#include "chksim/core/failure_study.hpp"
#include "chksim/obs/export.hpp"
#include "chksim/obs/tracer.hpp"
#include "chksim/support/cli.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;

  Cli cli;
  cli.flag("trace-out", "", "write a Perfetto trace of the replayed failure run");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    return 1;
  }

  // --- Part 1: direct vs decoupled on one halo3d cell ----------------------
  const TimeNs interval = 10_ms;
  core::FailureStudyConfig cfg;
  cfg.mode = core::FailureModel::kDirect;
  cfg.study.machine = net::infiniband_system();
  // Scale the checkpoint size so one write occupies ~8 % of each interval
  // (the preset sizes assume hours-long intervals), and scale the failure
  // frame to the simulated horizon (~40 ms of engine time): a 30 ms system
  // MTBF lands a failure or two per trial.
  cfg.study.machine.ckpt_bytes_per_node = static_cast<Bytes>(
      0.08 * units::to_seconds(interval) * cfg.study.machine.node_bw_bytes_per_s);
  cfg.study.machine.node_mtbf_hours = 0.030 * 32 / 3600.0;
  cfg.study.machine.restart_seconds = 0.002;
  cfg.study.workload = "halo3d";
  cfg.study.params.ranks = 32;
  cfg.study.params.compute = 1_ms;
  cfg.study.params.bytes = 8_KiB;
  cfg.study.params.iterations = 40;
  cfg.study.protocol.kind = ckpt::ProtocolKind::kCoordinated;
  cfg.study.protocol.fixed_interval = interval;
  cfg.trials = 10;
  cfg.seed = 7;

  const core::DirectFailureStudyResult r = core::run_direct_failure_study(cfg);
  std::cout << "direct vs decoupled (halo3d/32, coordinated, system MTBF 30 ms)\n"
            << "  direct mean makespan    " << r.direct.mean_seconds * 1e3 << " ms\n"
            << "  decoupled mean makespan " << r.decoupled.mean_seconds * 1e3 << " ms\n"
            << "  relative error          " << r.relative_error * 100 << " %\n"
            << "  failures / rollbacks    " << r.stats.failures << " / "
            << r.stats.rollbacks << " over " << cfg.trials << " trials\n"
            << "  lost work               " << units::to_seconds(r.stats.lost_work) * 1e3
            << " ms\n";

  // --- Part 2: explicit trace, exported for Perfetto -----------------------
  const sim::Program program = core::build_workload(cfg.study);
  const ckpt::Artifacts art = core::prepare_protocol(
      cfg.study.protocol, cfg.study.machine, cfg.study.params.ranks);

  obs::EventTracer tracer(cfg.study.params.ranks);
  sim::EngineConfig engine;
  engine.net = cfg.study.machine.net;
  engine.blackouts = art.schedule.get();
  engine.tax = art.tax.get();
  engine.trace = &tracer;

  fault::DirectConfig dc;
  dc.mode = fault::RecoveryMode::kGlobalRollback;
  dc.commits = art.schedule.get();
  dc.restart = 2_ms;
  dc.trace = &tracer;

  // Two failures: one mid-interval (rolls back to the previous commit) and
  // one landing inside the first recovery's shadow (absorbed).
  const std::vector<fault::Failure> trace{{15_ms, 3}, {16_ms, 9}};
  const fault::DirectResult replayed =
      fault::run_with_failures(program, engine, dc, trace);
  std::cout << "trace replay: makespan " << units::to_seconds(replayed.makespan_wall) * 1e3
            << " ms after " << replayed.stats.failures << " failure(s), "
            << replayed.stats.snapshots << " snapshot(s)\n";

  const std::string out = cli.get("trace-out");
  if (!out.empty()) {
    std::string error;
    if (!obs::write_chrome_trace_file(tracer, out, &error)) {
      std::cerr << "trace export failed: " << error << "\n";
      return 1;
    }
    std::cout << "wrote " << out << " (" << tracer.recorded() << " events)\n";
  }
  return 0;
}
