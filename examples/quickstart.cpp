// Quickstart: simulate a 3D halo-exchange application on an InfiniBand-class
// machine with coordinated checkpointing, and print where the time goes.
//
//   $ ./example_quickstart
//   $ ./example_quickstart --trace-out trace.json --report-out report.json
//
// The three steps every chksim study follows:
//   1. describe the machine (net::MachineModel),
//   2. describe the application (a workload name + StdParams),
//   3. describe the checkpoint protocol (core::ProtocolSpec),
// then core::run_study() builds the communication DAG, runs it through the
// LogGOPS engine with and without the protocol's perturbation, and returns
// the breakdown. With --trace-out the perturbed run is traced (open the file
// in Perfetto to see ranks, messages, blackouts, and waits on a timeline);
// with --report-out the study publishes a JSON metrics run-report.
#include <cstdio>
#include <iostream>

#include "chksim/core/study.hpp"
#include "chksim/obs/attribution.hpp"
#include "chksim/obs/export.hpp"
#include "chksim/support/cli.hpp"
#include "chksim/support/parallel.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;

  Cli cli;
  cli.flag("jobs", "0",
           "threads for the base/perturbed engine pair; 0 = all cores");
  add_observability_flags(cli);
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    return 1;
  }

  core::StudyConfig cfg;
  cfg.jobs = par::resolve_jobs(static_cast<int>(cli.get_int("jobs")));

  // 1. Machine: an InfiniBand system, scaled so each checkpoint writes
  //    4 MiB per node (scaled down so this short demo sees several checkpoints).
  cfg.machine = net::infiniband_system();
  cfg.machine.ckpt_bytes_per_node = 4_MiB;

  // 2. Application: 512 ranks of 7-point 3D halo exchange, 100 iterations
  //    of 2 ms of compute exchanging 8 KiB faces.
  cfg.workload = "halo3d";
  cfg.params.ranks = 512;
  cfg.params.iterations = 100;
  cfg.params.compute = 2_ms;
  cfg.params.bytes = 8_KiB;

  // 3. Protocol: coordinated checkpointing with a fixed 50 ms interval
  //    (scaled down like the checkpoint size; real studies use
  //    IntervalPolicy::kDaly against real MTBFs — see the other examples).
  cfg.protocol.kind = ckpt::ProtocolKind::kCoordinated;
  cfg.protocol.fixed_interval = 50_ms;

  // Observability hooks, enabled by the flags.
  obs::EventTracer tracer(cfg.params.ranks);
  obs::MetricsRegistry metrics;
  if (cli.is_set("trace-out")) cfg.trace = &tracer;
  if (cli.is_set("report-out") || cli.is_set("trace-out")) cfg.metrics = &metrics;

  const core::Breakdown b = core::run_study(cfg);

  std::printf("workload            : %s on %d ranks (%lld ops, %lld messages)\n",
              b.workload.c_str(), b.ranks, static_cast<long long>(b.ops),
              static_cast<long long>(b.msgs));
  std::printf("protocol            : %s, interval %s\n", b.protocol.c_str(),
              units::format_time(b.interval).c_str());
  std::printf("per-checkpoint cost : %s  (coordination %s + write %s)\n",
              units::format_time(b.blackout).c_str(),
              units::format_time(b.coordination_time).c_str(),
              units::format_time(b.write_time).c_str());
  std::printf("blackout duty cycle : %.2f%%\n", 100 * b.duty_cycle);
  std::printf("makespan            : %s -> %s\n",
              units::format_time(b.base_makespan).c_str(),
              units::format_time(b.perturbed_makespan).c_str());
  std::printf("slowdown            : %.4f (overhead %.2f%%)\n", b.slowdown,
              100 * b.overhead_fraction);
  std::printf("propagation factor  : %.2f  (overhead / duty cycle; >1 means the\n"
              "                      communication graph amplified the checkpoints)\n",
              b.propagation_factor);

  if (cli.is_set("trace-out")) {
    const obs::WaitAttribution att = obs::attribute_waits(tracer);
    std::printf("wait attribution    : %s\n", att.to_string().c_str());
    std::string error;
    if (!obs::write_chrome_trace_file(tracer, cli.get("trace-out"), &error)) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    std::printf("trace               : %s (%llu events)\n",
                cli.get("trace-out").c_str(),
                static_cast<unsigned long long>(tracer.recorded()));
  }
  if (cli.is_set("report-out")) {
    std::string error;
    if (!metrics.write_json_file(cli.get("report-out"), &error)) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    std::printf("report              : %s\n", cli.get("report-out").c_str());
  }
  return 0;
}
