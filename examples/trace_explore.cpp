// Trace explorer: record a full event trace of a perturbed run, attribute
// every nanosecond of receive waiting to its root cause, and export the
// timeline for Perfetto.
//
//   $ ./example_trace_explore --workload halo3d --ranks 64 --blackout-ms 5
//         --trace-out trace.json --csv-out trace.csv --report-out report.json
//
// A single rank (the "victim") blacks out mid-run — the paper's minimal
// propagation probe (see bench_e05). The wait-state attribution pass then
// classifies every rank's recv_wait as sender_blackout (the victim directly
// stalled my sender), propagated (the delay arrived through intermediate
// ranks), or network (wire time and structural slack a delay-free run would
// also have had). The per-rank table below is the delay wavefront in
// numbers; the exported trace is the same wavefront as a picture.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "chksim/net/machines.hpp"
#include "chksim/noise/noise.hpp"
#include "chksim/obs/attribution.hpp"
#include "chksim/obs/export.hpp"
#include "chksim/obs/metrics.hpp"
#include "chksim/support/cli.hpp"
#include "chksim/support/table.hpp"
#include "chksim/workload/workloads.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;

  Cli cli;
  cli.flag("workload", "halo3d", "registry workload name")
      .flag("ranks", "64", "simulated scale")
      .flag("iterations", "20", "workload iterations")
      .flag("compute-us", "1000", "compute per iteration (us)")
      .flag("bytes", "8192", "message payload (bytes)")
      .flag("victim", "-1", "blacked-out rank (-1 = middle rank)")
      .flag("blackout-ms", "5", "single blackout duration (ms); 0 = none")
      .flag("blackout-at", "0.33", "blackout start as a fraction of the base makespan")
      .flag("top", "8", "show the N ranks with the most waiting")
      .flag("csv-out", "", "also write the raw event CSV");
  add_observability_flags(cli);
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    return 1;
  }

  try {
    const int ranks = static_cast<int>(cli.get_int("ranks"));
    workload::StdParams params;
    params.ranks = ranks;
    params.iterations = static_cast<int>(cli.get_int("iterations"));
    params.compute = cli.get_int("compute-us") * units::kMicrosecond;
    params.bytes = cli.get_int("bytes");
    sim::Program program = workload::make_workload(cli.get("workload"), params);
    program.finalize();

    sim::EngineConfig cfg;
    cfg.net = net::infiniband_system().net;
    const sim::RunResult base = sim::run_program(program, cfg);
    if (!base.completed) throw std::runtime_error("base run failed: " + base.error);

    // Perturb: one blackout on one rank, then trace the perturbed run.
    const TimeNs dur = cli.get_int("blackout-ms") * units::kMillisecond;
    sim::RankId victim = static_cast<sim::RankId>(cli.get_int("victim"));
    if (victim < 0) victim = ranks / 2;
    std::unique_ptr<sim::BlackoutSchedule> noise;
    if (dur > 0) {
      const TimeNs start = static_cast<TimeNs>(
          cli.get_double("blackout-at") * static_cast<double>(base.makespan));
      noise = noise::make_single_blackout(ranks, victim, {start, start + dur});
      cfg.blackouts = noise.get();
    }
    obs::EventTracer tracer(ranks);
    cfg.trace = &tracer;
    const sim::RunResult run = sim::run_program(program, cfg);
    if (!run.completed) throw std::runtime_error("traced run failed: " + run.error);

    std::printf("workload        : %s on %d ranks, victim rank %d\n",
                cli.get("workload").c_str(), ranks, victim);
    std::printf("makespan        : %s -> %s (blackout %s)\n",
                units::format_time(base.makespan).c_str(),
                units::format_time(run.makespan).c_str(),
                units::format_time(dur).c_str());
    std::printf("trace           : %llu events recorded\n",
                static_cast<unsigned long long>(tracer.recorded()));

    const obs::WaitAttribution att = obs::attribute_waits(tracer);
    std::printf("attribution     : %s\n\n", att.to_string().c_str());

    // The N ranks that waited most, with their wait decomposed.
    std::vector<int> order(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) order[static_cast<std::size_t>(r)] = r;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return att.ranks[static_cast<std::size_t>(a)].recv_wait >
             att.ranks[static_cast<std::size_t>(b)].recv_wait;
    });
    const int top = std::min<int>(static_cast<int>(cli.get_int("top")), ranks);
    Table t({"rank", "recv_wait", "sender_blackout", "propagated", "network"});
    for (int k = 0; k < top; ++k) {
      const int r = order[static_cast<std::size_t>(k)];
      const obs::RankWaitAttribution& a = att.ranks[static_cast<std::size_t>(r)];
      t.row() << std::int64_t{r} << units::format_time(a.recv_wait)
              << units::format_time(a.sender_blackout)
              << units::format_time(a.propagated)
              << units::format_time(a.network);
    }
    std::cout << t.to_ascii();

    std::string error;
    if (cli.is_set("trace-out")) {
      if (!obs::write_chrome_trace_file(tracer, cli.get("trace-out"), &error))
        throw std::runtime_error(error);
      std::printf("trace written   : %s\n", cli.get("trace-out").c_str());
    }
    if (cli.is_set("csv-out")) {
      if (!obs::write_trace_csv_file(tracer, cli.get("csv-out"), &error))
        throw std::runtime_error(error);
      std::printf("csv written     : %s\n", cli.get("csv-out").c_str());
    }
    if (cli.is_set("report-out")) {
      obs::MetricsRegistry metrics;
      obs::publish_engine_metrics(base, metrics, "engine.base");
      obs::publish_engine_metrics(run, metrics, "engine.perturbed");
      metrics.set_gauge("attribution.sender_blackout_ns",
                        static_cast<double>(att.total.sender_blackout));
      metrics.set_gauge("attribution.propagated_ns",
                        static_cast<double>(att.total.propagated));
      metrics.set_gauge("attribution.network_ns",
                        static_cast<double>(att.total.network));
      metrics.set_gauge("attribution.recv_wait_ns",
                        static_cast<double>(att.total.recv_wait));
      if (!metrics.write_json_file(cli.get("report-out"), &error))
        throw std::runtime_error(error);
      std::printf("report written  : %s\n", cli.get("report-out").c_str());
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
