// Scale study driver: the library's capabilities behind one command line.
//
//   $ ./example_scale_study --workload hpccg --machine infiniband
//         --protocol uncoordinated --scales 64,256,1024 --duty 0.08
//         --tax-us 2 --tier pfs   (one line)
//
// For each scale: runs the perturbation simulation, reports the breakdown,
// and (with --mtbf-hours) the expected efficiency under failures.
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>

#include "chksim/core/failure_study.hpp"
#include "chksim/obs/attribution.hpp"
#include "chksim/obs/export.hpp"
#include "chksim/support/cli.hpp"
#include "chksim/support/parallel.hpp"
#include "chksim/support/table.hpp"

namespace {

std::vector<int> parse_scales(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  return out;
}

chksim::ckpt::ProtocolKind parse_protocol(const std::string& name) {
  using chksim::ckpt::ProtocolKind;
  if (name == "none") return ProtocolKind::kNone;
  if (name == "coordinated") return ProtocolKind::kCoordinated;
  if (name == "uncoordinated") return ProtocolKind::kUncoordinated;
  if (name == "hierarchical") return ProtocolKind::kHierarchical;
  throw std::invalid_argument("unknown protocol: " + name);
}

chksim::storage::StorageTier parse_tier(const std::string& name) {
  using chksim::storage::StorageTier;
  if (name == "pfs") return StorageTier::kParallelFs;
  if (name == "bb") return StorageTier::kBurstBuffer;
  if (name == "partner") return StorageTier::kPartner;
  throw std::invalid_argument("unknown tier: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;

  Cli cli;
  cli.flag("workload", "halo3d", "registry workload name")
      .flag("machine", "infiniband", "machine preset (see bench_t02)")
      .flag("protocol", "coordinated", "none|coordinated|uncoordinated|hierarchical")
      .flag("scales", "64,256,1024", "comma-separated rank counts")
      .flag("duty", "0.10", "checkpoint write duty cycle in the simulation")
      .flag("interval-ms", "10", "simulated checkpoint interval (ms)")
      .flag("tax-us", "0", "uncoordinated logging tax per message (us)")
      .flag("cluster", "16", "hierarchical cluster size")
      .flag("tier", "pfs", "checkpoint destination: pfs|bb|partner")
      .flag("mtbf-hours", "0", "node MTBF for the failure model (0 = skip)")
      .flag("trials", "200", "Monte-Carlo trials for the failure model")
      .flag("jobs", "0",
            "threads across scales/engine-runs/trials; 0 = all cores "
            "(results are identical for every value)");
  add_observability_flags(cli);
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    return 1;
  }

  try {
    const TimeNs interval = cli.get_int("interval-ms") * units::kMillisecond;
    const double duty = cli.get_double("duty");
    const double mtbf_hours = cli.get_double("mtbf-hours");
    const int jobs = par::resolve_jobs(static_cast<int>(cli.get_int("jobs")));

    const std::vector<int> scales = parse_scales(cli.get("scales"));
    // Observability: the report covers the largest (last) scale; the trace,
    // when requested, records its perturbed run.
    std::unique_ptr<obs::EventTracer> tracer;
    obs::MetricsRegistry metrics;
    std::vector<core::FailureStudyConfig> cells;
    for (const int ranks : scales) {
      core::FailureStudyConfig cfg;
      cfg.study.machine = net::machine_by_name(cli.get("machine"));
      // Scale the checkpoint so the simulated run covers many intervals,
      // with an uncontended PFS (contention is a separate axis; see E8).
      cfg.study.machine.ckpt_bytes_per_node = static_cast<Bytes>(
          duty * units::to_seconds(interval) * cfg.study.machine.node_bw_bytes_per_s);
      if (parse_tier(cli.get("tier")) == storage::StorageTier::kParallelFs)
        cfg.study.machine.pfs_bw_bytes_per_s =
            cfg.study.machine.node_bw_bytes_per_s * 1e7;
      if (mtbf_hours > 0) cfg.study.machine.node_mtbf_hours = mtbf_hours;
      cfg.study.workload = cli.get("workload");
      cfg.study.params.ranks = ranks;
      cfg.study.params.iterations = 40;
      cfg.study.params.compute = 1_ms;
      cfg.study.params.bytes = 8_KiB;
      cfg.study.protocol.kind = parse_protocol(cli.get("protocol"));
      cfg.study.protocol.fixed_interval = interval;
      cfg.study.protocol.log_per_message = cli.get_int("tax-us") * units::kMicrosecond;
      cfg.study.protocol.cluster_size = static_cast<int>(cli.get_int("cluster"));
      cfg.study.protocol.tier = parse_tier(cli.get("tier"));
      cfg.recovery_interval_seconds = 300;
      cfg.work_seconds = 24 * 3600;
      cfg.trials = static_cast<int>(cli.get_int("trials"));

      const bool observe_this_scale = ranks == scales.back();
      if (observe_this_scale) {
        if (cli.is_set("trace-out")) {
          tracer = std::make_unique<obs::EventTracer>(ranks);
          cfg.study.trace = tracer.get();
        }
        if (cli.is_set("report-out")) cfg.study.metrics = &metrics;
      }
      cells.push_back(cfg);
    }

    // The scales are independent cells; run them as one deterministic sweep.
    Table t({"ranks", "protocol", "duty", "slowdown", "propagation",
             mtbf_hours > 0 ? "efficiency(with failures)" : "efficiency(no failures)"});
    char slow[32], prop[32], duty_s[32], eff[32];
    if (mtbf_hours > 0) {
      const std::vector<core::FailureStudyResult> results =
          core::run_failure_sweep(cells, jobs);
      for (const core::FailureStudyResult& r : results) {
        std::snprintf(slow, sizeof slow, "%.4f", r.breakdown.slowdown);
        std::snprintf(prop, sizeof prop, "%.2f", r.breakdown.propagation_factor);
        std::snprintf(duty_s, sizeof duty_s, "%.2f%%", 100 * r.breakdown.duty_cycle);
        std::snprintf(eff, sizeof eff, "%.4f", r.makespan.efficiency);
        t.row() << std::int64_t{r.breakdown.ranks} << r.breakdown.protocol << duty_s
                << slow << prop << eff;
      }
    } else {
      std::vector<core::StudyConfig> studies;
      studies.reserve(cells.size());
      for (const core::FailureStudyConfig& c : cells) studies.push_back(c.study);
      const std::vector<core::Breakdown> results = core::run_sweep(studies, jobs);
      for (const core::Breakdown& b : results) {
        std::snprintf(slow, sizeof slow, "%.4f", b.slowdown);
        std::snprintf(prop, sizeof prop, "%.2f", b.propagation_factor);
        std::snprintf(duty_s, sizeof duty_s, "%.2f%%", 100 * b.duty_cycle);
        std::snprintf(eff, sizeof eff, "%.4f", 1.0 / b.slowdown);
        t.row() << std::int64_t{b.ranks} << b.protocol << duty_s << slow << prop << eff;
      }
    }
    std::cout << t.to_ascii();

    if (tracer != nullptr) {
      const obs::WaitAttribution att = obs::attribute_waits(*tracer);
      std::cout << "wait attribution (" << scales.back()
                << " ranks): " << att.to_string() << "\n";
      std::string error;
      if (!obs::write_chrome_trace_file(*tracer, cli.get("trace-out"), &error))
        throw std::runtime_error(error);
      std::cout << "trace written to " << cli.get("trace-out") << "\n";
    }
    if (cli.is_set("report-out")) {
      std::string error;
      if (!metrics.write_json_file(cli.get("report-out"), &error))
        throw std::runtime_error(error);
      std::cout << "report written to " << cli.get("report-out") << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
