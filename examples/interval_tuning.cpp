// Interval tuning: find and validate the optimal checkpoint interval.
//
//   $ ./example_interval_tuning [nodes]
//
// Shows Young's and Daly's analytic optima for a machine/scale, then sweeps
// intervals through the Monte-Carlo failure model to locate the empirical
// optimum — demonstrating both the analytic and stochastic halves of the
// library, and where they agree.
#include <cstdlib>
#include <iostream>

#include "chksim/analytic/daly.hpp"
#include "chksim/ckpt/interval.hpp"
#include "chksim/ckpt/recovery.hpp"
#include "chksim/support/table.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;

  const int nodes = argc > 1 ? std::atoi(argv[1]) : 4096;
  if (nodes < 1) {
    std::cerr << "usage: " << argv[0] << " [nodes>=1]\n";
    return 1;
  }

  const net::MachineModel machine = net::infiniband_system();
  const double M = machine.system_mtbf_seconds(nodes);
  const storage::Pfs pfs = ckpt::pfs_of(machine);
  const double delta = units::to_seconds(
      pfs.concurrent_write(machine.ckpt_bytes_per_node, nodes).per_node);
  const double R = machine.restart_seconds;

  std::cout << "machine=" << machine.name << " nodes=" << nodes
            << "\nsystem MTBF      = " << M / 3600 << " h"
            << "\ncheckpoint cost  = " << delta << " s (coordinated burst write)"
            << "\nrestart cost     = " << R << " s\n\n";

  const double tau_young = analytic::young_interval(delta, M);
  const double tau_daly = analytic::daly_interval(delta, M);
  std::cout << "Young's interval = " << tau_young << " s\n"
            << "Daly's interval  = " << tau_daly << " s\n\n";

  const double work = 7.0 * 24 * 3600;
  Table t({"tau(s)", "tau/tau_daly", "efficiency(MC)", "efficiency(Daly)"});
  double best_eff = 0, best_tau = 0;
  for (double mult = 0.2; mult <= 5.01; mult *= 1.3) {
    const double tau = tau_daly * mult;
    if (tau <= delta) continue;
    ckpt::RecoveryParams rp;
    rp.kind = ckpt::ProtocolKind::kCoordinated;
    rp.work_seconds = work;
    rp.slowdown = 1.0 + delta / tau;
    rp.interval_seconds = tau;
    rp.restart_seconds = R;
    fault::Exponential dist(M);
    const ckpt::MakespanResult mk = ckpt::simulate_makespan(rp, dist, 400, 5);
    char c1[32], c2[32], c3[32], c4[32];
    std::snprintf(c1, sizeof c1, "%.0f", tau);
    std::snprintf(c2, sizeof c2, "%.2f", mult);
    std::snprintf(c3, sizeof c3, "%.4f", mk.efficiency);
    std::snprintf(c4, sizeof c4, "%.4f",
                  analytic::daly_efficiency(work, tau, delta, R, M));
    t.row() << c1 << c2 << c3 << c4;
    if (mk.efficiency > best_eff) {
      best_eff = mk.efficiency;
      best_tau = tau;
    }
  }
  std::cout << t.to_ascii() << "\nempirical optimum ~" << best_tau
            << " s vs Daly " << tau_daly << " s ("
            << (best_tau / tau_daly) << "x)\n";
  return 0;
}
