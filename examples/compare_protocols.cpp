// Compare checkpoint protocols on one application, end to end.
//
//   $ ./example_compare_protocols [workload] [ranks]
//
// Runs coordinated, uncoordinated (with and without a logging tax), and
// hierarchical checkpointing on the same workload, including the failure
// model, and prints a side-by-side table — the library's answer to "which
// protocol should my application use on this machine?"
#include <cstdlib>
#include <iostream>
#include <string>

#include "chksim/core/failure_study.hpp"
#include "chksim/support/table.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;

  const std::string workload = argc > 1 ? argv[1] : "hpccg";
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 256;
  if (ranks < 2) {
    std::cerr << "usage: " << argv[0] << " [workload] [ranks>=2]\n";
    return 1;
  }

  core::FailureStudyConfig base;
  base.study.machine = net::infiniband_system();
  base.study.machine.ckpt_bytes_per_node = 12_MiB;  // ~8 ms write per ckpt
  base.study.machine.node_mtbf_hours = 500;          // stress reliability
  base.study.workload = workload;
  base.study.params.ranks = ranks;
  base.study.params.iterations = 40;
  base.study.params.compute = 1_ms;
  base.study.params.bytes = 8_KiB;
  base.study.protocol.fixed_interval = 100_ms;  // scaled simulation interval
  base.recovery_interval_seconds = 300;         // realistic recovery interval
  base.work_seconds = 24 * 3600;
  base.trials = 200;

  struct Variant {
    const char* label;
    ckpt::ProtocolKind kind;
    TimeNs tax;
    int cluster;
  };
  const Variant variants[] = {
      {"none", ckpt::ProtocolKind::kNone, 0, 0},
      {"coordinated", ckpt::ProtocolKind::kCoordinated, 0, 0},
      {"uncoordinated (free logging)", ckpt::ProtocolKind::kUncoordinated, 0, 0},
      {"uncoordinated (2us/msg log)", ckpt::ProtocolKind::kUncoordinated, 2_us, 0},
      {"hierarchical c=16 (2us/msg)", ckpt::ProtocolKind::kHierarchical, 2_us, 16},
  };

  Table t({"protocol", "slowdown", "duty", "failures", "makespan(h)", "efficiency"});
  for (const Variant& v : variants) {
    core::FailureStudyConfig cfg = base;
    cfg.study.protocol.kind = v.kind;
    cfg.study.protocol.log_per_message = v.tax;
    if (v.cluster > 0) cfg.study.protocol.cluster_size = v.cluster;
    const core::FailureStudyResult r = core::run_failure_study(cfg);
    char duty[32], slow[32], fails[32], mk[32], eff[32];
    std::snprintf(duty, sizeof duty, "%.2f%%", 100 * r.breakdown.duty_cycle);
    std::snprintf(slow, sizeof slow, "%.4f", r.breakdown.slowdown);
    std::snprintf(fails, sizeof fails, "%.1f", r.makespan.mean_failures);
    std::snprintf(mk, sizeof mk, "%.2f", r.makespan.mean_seconds / 3600);
    std::snprintf(eff, sizeof eff, "%.3f", r.makespan.efficiency);
    t.row() << v.label << slow << duty << fails << mk << eff;
  }
  std::cout << "workload=" << workload << " ranks=" << ranks
            << " node_mtbf=500h work=24h\n\n"
            << t.to_ascii();
  return 0;
}
