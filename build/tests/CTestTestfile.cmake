# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_analytic[1]_include.cmake")
include("/root/repo/build/tests/test_analytic_replication[1]_include.cmake")
include("/root/repo/build/tests/test_availability_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_ckpt_incremental[1]_include.cmake")
include("/root/repo/build/tests/test_ckpt_protocols[1]_include.cmake")
include("/root/repo/build/tests/test_ckpt_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_ckpt_tiers[1]_include.cmake")
include("/root/repo/build/tests/test_coll_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_coll_vs_analytic[1]_include.cmake")
include("/root/repo/build/tests/test_core_study[1]_include.cmake")
include("/root/repo/build/tests/test_engine_edge[1]_include.cmake")
include("/root/repo/build/tests/test_engine_property[1]_include.cmake")
include("/root/repo/build/tests/test_fault_extra[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_noise[1]_include.cmake")
include("/root/repo/build/tests/test_sim_availability[1]_include.cmake")
include("/root/repo/build/tests/test_sim_engine[1]_include.cmake")
include("/root/repo/build/tests/test_sim_goal[1]_include.cmake")
include("/root/repo/build/tests/test_sim_timeline[1]_include.cmake")
include("/root/repo/build/tests/test_storage_fault[1]_include.cmake")
include("/root/repo/build/tests/test_support_cli[1]_include.cmake")
include("/root/repo/build/tests/test_support_rng[1]_include.cmake")
include("/root/repo/build/tests/test_support_stats[1]_include.cmake")
include("/root/repo/build/tests/test_workload_characterize[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_workloads_extra[1]_include.cmake")
