file(REMOVE_RECURSE
  "CMakeFiles/test_ckpt_incremental.dir/test_ckpt_incremental.cpp.o"
  "CMakeFiles/test_ckpt_incremental.dir/test_ckpt_incremental.cpp.o.d"
  "test_ckpt_incremental"
  "test_ckpt_incremental.pdb"
  "test_ckpt_incremental[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckpt_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
