# Empty dependencies file for test_ckpt_incremental.
# This may be replaced when dependencies are built.
