# Empty dependencies file for test_availability_fuzz.
# This may be replaced when dependencies are built.
