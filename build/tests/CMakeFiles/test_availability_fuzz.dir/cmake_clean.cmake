file(REMOVE_RECURSE
  "CMakeFiles/test_availability_fuzz.dir/test_availability_fuzz.cpp.o"
  "CMakeFiles/test_availability_fuzz.dir/test_availability_fuzz.cpp.o.d"
  "test_availability_fuzz"
  "test_availability_fuzz.pdb"
  "test_availability_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_availability_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
