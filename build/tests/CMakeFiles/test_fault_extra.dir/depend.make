# Empty dependencies file for test_fault_extra.
# This may be replaced when dependencies are built.
