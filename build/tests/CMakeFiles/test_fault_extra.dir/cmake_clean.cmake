file(REMOVE_RECURSE
  "CMakeFiles/test_fault_extra.dir/test_fault_extra.cpp.o"
  "CMakeFiles/test_fault_extra.dir/test_fault_extra.cpp.o.d"
  "test_fault_extra"
  "test_fault_extra.pdb"
  "test_fault_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
