file(REMOVE_RECURSE
  "CMakeFiles/test_ckpt_tiers.dir/test_ckpt_tiers.cpp.o"
  "CMakeFiles/test_ckpt_tiers.dir/test_ckpt_tiers.cpp.o.d"
  "test_ckpt_tiers"
  "test_ckpt_tiers.pdb"
  "test_ckpt_tiers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckpt_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
