# Empty compiler generated dependencies file for test_ckpt_tiers.
# This may be replaced when dependencies are built.
