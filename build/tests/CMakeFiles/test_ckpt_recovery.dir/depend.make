# Empty dependencies file for test_ckpt_recovery.
# This may be replaced when dependencies are built.
