file(REMOVE_RECURSE
  "CMakeFiles/test_ckpt_recovery.dir/test_ckpt_recovery.cpp.o"
  "CMakeFiles/test_ckpt_recovery.dir/test_ckpt_recovery.cpp.o.d"
  "test_ckpt_recovery"
  "test_ckpt_recovery.pdb"
  "test_ckpt_recovery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckpt_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
