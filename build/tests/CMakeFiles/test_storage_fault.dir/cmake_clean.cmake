file(REMOVE_RECURSE
  "CMakeFiles/test_storage_fault.dir/test_storage_fault.cpp.o"
  "CMakeFiles/test_storage_fault.dir/test_storage_fault.cpp.o.d"
  "test_storage_fault"
  "test_storage_fault.pdb"
  "test_storage_fault[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
