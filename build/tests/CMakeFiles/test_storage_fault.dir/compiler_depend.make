# Empty compiler generated dependencies file for test_storage_fault.
# This may be replaced when dependencies are built.
