# Empty dependencies file for test_sim_availability.
# This may be replaced when dependencies are built.
