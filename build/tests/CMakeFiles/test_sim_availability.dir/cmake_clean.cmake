file(REMOVE_RECURSE
  "CMakeFiles/test_sim_availability.dir/test_sim_availability.cpp.o"
  "CMakeFiles/test_sim_availability.dir/test_sim_availability.cpp.o.d"
  "test_sim_availability"
  "test_sim_availability.pdb"
  "test_sim_availability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
