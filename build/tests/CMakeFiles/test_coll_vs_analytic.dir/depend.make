# Empty dependencies file for test_coll_vs_analytic.
# This may be replaced when dependencies are built.
