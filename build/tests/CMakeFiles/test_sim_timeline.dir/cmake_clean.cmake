file(REMOVE_RECURSE
  "CMakeFiles/test_sim_timeline.dir/test_sim_timeline.cpp.o"
  "CMakeFiles/test_sim_timeline.dir/test_sim_timeline.cpp.o.d"
  "test_sim_timeline"
  "test_sim_timeline.pdb"
  "test_sim_timeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
