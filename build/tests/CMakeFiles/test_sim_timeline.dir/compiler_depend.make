# Empty compiler generated dependencies file for test_sim_timeline.
# This may be replaced when dependencies are built.
