# Empty compiler generated dependencies file for test_core_study.
# This may be replaced when dependencies are built.
