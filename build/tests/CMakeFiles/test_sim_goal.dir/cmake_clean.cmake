file(REMOVE_RECURSE
  "CMakeFiles/test_sim_goal.dir/test_sim_goal.cpp.o"
  "CMakeFiles/test_sim_goal.dir/test_sim_goal.cpp.o.d"
  "test_sim_goal"
  "test_sim_goal.pdb"
  "test_sim_goal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_goal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
