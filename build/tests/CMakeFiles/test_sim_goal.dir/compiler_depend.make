# Empty compiler generated dependencies file for test_sim_goal.
# This may be replaced when dependencies are built.
