# Empty compiler generated dependencies file for test_ckpt_protocols.
# This may be replaced when dependencies are built.
