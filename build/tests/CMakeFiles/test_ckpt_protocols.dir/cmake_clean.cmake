file(REMOVE_RECURSE
  "CMakeFiles/test_ckpt_protocols.dir/test_ckpt_protocols.cpp.o"
  "CMakeFiles/test_ckpt_protocols.dir/test_ckpt_protocols.cpp.o.d"
  "test_ckpt_protocols"
  "test_ckpt_protocols.pdb"
  "test_ckpt_protocols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckpt_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
