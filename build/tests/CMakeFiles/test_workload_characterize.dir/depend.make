# Empty dependencies file for test_workload_characterize.
# This may be replaced when dependencies are built.
