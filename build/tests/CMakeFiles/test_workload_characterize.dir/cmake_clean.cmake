file(REMOVE_RECURSE
  "CMakeFiles/test_workload_characterize.dir/test_workload_characterize.cpp.o"
  "CMakeFiles/test_workload_characterize.dir/test_workload_characterize.cpp.o.d"
  "test_workload_characterize"
  "test_workload_characterize.pdb"
  "test_workload_characterize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_characterize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
