# Empty dependencies file for test_coll_collectives.
# This may be replaced when dependencies are built.
