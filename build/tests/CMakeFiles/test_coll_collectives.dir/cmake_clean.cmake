file(REMOVE_RECURSE
  "CMakeFiles/test_coll_collectives.dir/test_coll_collectives.cpp.o"
  "CMakeFiles/test_coll_collectives.dir/test_coll_collectives.cpp.o.d"
  "test_coll_collectives"
  "test_coll_collectives.pdb"
  "test_coll_collectives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coll_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
