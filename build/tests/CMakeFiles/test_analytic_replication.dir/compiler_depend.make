# Empty compiler generated dependencies file for test_analytic_replication.
# This may be replaced when dependencies are built.
