file(REMOVE_RECURSE
  "CMakeFiles/test_analytic_replication.dir/test_analytic_replication.cpp.o"
  "CMakeFiles/test_analytic_replication.dir/test_analytic_replication.cpp.o.d"
  "test_analytic_replication"
  "test_analytic_replication.pdb"
  "test_analytic_replication[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytic_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
