file(REMOVE_RECURSE
  "CMakeFiles/example_interval_tuning.dir/interval_tuning.cpp.o"
  "CMakeFiles/example_interval_tuning.dir/interval_tuning.cpp.o.d"
  "example_interval_tuning"
  "example_interval_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_interval_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
