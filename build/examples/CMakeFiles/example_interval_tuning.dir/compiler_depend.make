# Empty compiler generated dependencies file for example_interval_tuning.
# This may be replaced when dependencies are built.
