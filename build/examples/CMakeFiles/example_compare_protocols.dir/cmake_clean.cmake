file(REMOVE_RECURSE
  "CMakeFiles/example_compare_protocols.dir/compare_protocols.cpp.o"
  "CMakeFiles/example_compare_protocols.dir/compare_protocols.cpp.o.d"
  "example_compare_protocols"
  "example_compare_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compare_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
