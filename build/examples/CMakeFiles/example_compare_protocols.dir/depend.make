# Empty dependencies file for example_compare_protocols.
# This may be replaced when dependencies are built.
