file(REMOVE_RECURSE
  "CMakeFiles/example_replay_goal.dir/replay_goal.cpp.o"
  "CMakeFiles/example_replay_goal.dir/replay_goal.cpp.o.d"
  "example_replay_goal"
  "example_replay_goal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_replay_goal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
