# Empty dependencies file for example_replay_goal.
# This may be replaced when dependencies are built.
