# Empty compiler generated dependencies file for example_scale_study.
# This may be replaced when dependencies are built.
