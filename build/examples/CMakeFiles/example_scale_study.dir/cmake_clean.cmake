file(REMOVE_RECURSE
  "CMakeFiles/example_scale_study.dir/scale_study.cpp.o"
  "CMakeFiles/example_scale_study.dir/scale_study.cpp.o.d"
  "example_scale_study"
  "example_scale_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scale_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
