file(REMOVE_RECURSE
  "CMakeFiles/chksim_analytic.dir/chksim/analytic/coordination.cpp.o"
  "CMakeFiles/chksim_analytic.dir/chksim/analytic/coordination.cpp.o.d"
  "CMakeFiles/chksim_analytic.dir/chksim/analytic/daly.cpp.o"
  "CMakeFiles/chksim_analytic.dir/chksim/analytic/daly.cpp.o.d"
  "CMakeFiles/chksim_analytic.dir/chksim/analytic/efficiency.cpp.o"
  "CMakeFiles/chksim_analytic.dir/chksim/analytic/efficiency.cpp.o.d"
  "CMakeFiles/chksim_analytic.dir/chksim/analytic/replication.cpp.o"
  "CMakeFiles/chksim_analytic.dir/chksim/analytic/replication.cpp.o.d"
  "libchksim_analytic.a"
  "libchksim_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chksim_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
