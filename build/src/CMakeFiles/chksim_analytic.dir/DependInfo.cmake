
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chksim/analytic/coordination.cpp" "src/CMakeFiles/chksim_analytic.dir/chksim/analytic/coordination.cpp.o" "gcc" "src/CMakeFiles/chksim_analytic.dir/chksim/analytic/coordination.cpp.o.d"
  "/root/repo/src/chksim/analytic/daly.cpp" "src/CMakeFiles/chksim_analytic.dir/chksim/analytic/daly.cpp.o" "gcc" "src/CMakeFiles/chksim_analytic.dir/chksim/analytic/daly.cpp.o.d"
  "/root/repo/src/chksim/analytic/efficiency.cpp" "src/CMakeFiles/chksim_analytic.dir/chksim/analytic/efficiency.cpp.o" "gcc" "src/CMakeFiles/chksim_analytic.dir/chksim/analytic/efficiency.cpp.o.d"
  "/root/repo/src/chksim/analytic/replication.cpp" "src/CMakeFiles/chksim_analytic.dir/chksim/analytic/replication.cpp.o" "gcc" "src/CMakeFiles/chksim_analytic.dir/chksim/analytic/replication.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chksim_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
