# Empty compiler generated dependencies file for chksim_analytic.
# This may be replaced when dependencies are built.
