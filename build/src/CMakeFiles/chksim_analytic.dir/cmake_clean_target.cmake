file(REMOVE_RECURSE
  "libchksim_analytic.a"
)
