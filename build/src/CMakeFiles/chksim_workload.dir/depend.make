# Empty dependencies file for chksim_workload.
# This may be replaced when dependencies are built.
