file(REMOVE_RECURSE
  "CMakeFiles/chksim_workload.dir/chksim/workload/characterize.cpp.o"
  "CMakeFiles/chksim_workload.dir/chksim/workload/characterize.cpp.o.d"
  "CMakeFiles/chksim_workload.dir/chksim/workload/workloads.cpp.o"
  "CMakeFiles/chksim_workload.dir/chksim/workload/workloads.cpp.o.d"
  "libchksim_workload.a"
  "libchksim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chksim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
