file(REMOVE_RECURSE
  "libchksim_workload.a"
)
