# Empty compiler generated dependencies file for chksim_workload.
# This may be replaced when dependencies are built.
