# Empty dependencies file for chksim_ckpt.
# This may be replaced when dependencies are built.
