file(REMOVE_RECURSE
  "libchksim_ckpt.a"
)
