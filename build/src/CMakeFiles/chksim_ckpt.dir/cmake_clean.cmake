file(REMOVE_RECURSE
  "CMakeFiles/chksim_ckpt.dir/chksim/ckpt/interval.cpp.o"
  "CMakeFiles/chksim_ckpt.dir/chksim/ckpt/interval.cpp.o.d"
  "CMakeFiles/chksim_ckpt.dir/chksim/ckpt/logging_tax.cpp.o"
  "CMakeFiles/chksim_ckpt.dir/chksim/ckpt/logging_tax.cpp.o.d"
  "CMakeFiles/chksim_ckpt.dir/chksim/ckpt/protocols.cpp.o"
  "CMakeFiles/chksim_ckpt.dir/chksim/ckpt/protocols.cpp.o.d"
  "CMakeFiles/chksim_ckpt.dir/chksim/ckpt/recovery.cpp.o"
  "CMakeFiles/chksim_ckpt.dir/chksim/ckpt/recovery.cpp.o.d"
  "libchksim_ckpt.a"
  "libchksim_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chksim_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
