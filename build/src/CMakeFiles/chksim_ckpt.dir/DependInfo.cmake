
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chksim/ckpt/interval.cpp" "src/CMakeFiles/chksim_ckpt.dir/chksim/ckpt/interval.cpp.o" "gcc" "src/CMakeFiles/chksim_ckpt.dir/chksim/ckpt/interval.cpp.o.d"
  "/root/repo/src/chksim/ckpt/logging_tax.cpp" "src/CMakeFiles/chksim_ckpt.dir/chksim/ckpt/logging_tax.cpp.o" "gcc" "src/CMakeFiles/chksim_ckpt.dir/chksim/ckpt/logging_tax.cpp.o.d"
  "/root/repo/src/chksim/ckpt/protocols.cpp" "src/CMakeFiles/chksim_ckpt.dir/chksim/ckpt/protocols.cpp.o" "gcc" "src/CMakeFiles/chksim_ckpt.dir/chksim/ckpt/protocols.cpp.o.d"
  "/root/repo/src/chksim/ckpt/recovery.cpp" "src/CMakeFiles/chksim_ckpt.dir/chksim/ckpt/recovery.cpp.o" "gcc" "src/CMakeFiles/chksim_ckpt.dir/chksim/ckpt/recovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chksim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
