# Empty dependencies file for chksim_core.
# This may be replaced when dependencies are built.
