file(REMOVE_RECURSE
  "libchksim_core.a"
)
