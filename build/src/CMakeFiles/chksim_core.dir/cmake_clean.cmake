file(REMOVE_RECURSE
  "CMakeFiles/chksim_core.dir/chksim/core/failure_study.cpp.o"
  "CMakeFiles/chksim_core.dir/chksim/core/failure_study.cpp.o.d"
  "CMakeFiles/chksim_core.dir/chksim/core/scale_model.cpp.o"
  "CMakeFiles/chksim_core.dir/chksim/core/scale_model.cpp.o.d"
  "CMakeFiles/chksim_core.dir/chksim/core/study.cpp.o"
  "CMakeFiles/chksim_core.dir/chksim/core/study.cpp.o.d"
  "libchksim_core.a"
  "libchksim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chksim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
