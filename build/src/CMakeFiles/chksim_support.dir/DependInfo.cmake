
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chksim/support/cli.cpp" "src/CMakeFiles/chksim_support.dir/chksim/support/cli.cpp.o" "gcc" "src/CMakeFiles/chksim_support.dir/chksim/support/cli.cpp.o.d"
  "/root/repo/src/chksim/support/rng.cpp" "src/CMakeFiles/chksim_support.dir/chksim/support/rng.cpp.o" "gcc" "src/CMakeFiles/chksim_support.dir/chksim/support/rng.cpp.o.d"
  "/root/repo/src/chksim/support/stats.cpp" "src/CMakeFiles/chksim_support.dir/chksim/support/stats.cpp.o" "gcc" "src/CMakeFiles/chksim_support.dir/chksim/support/stats.cpp.o.d"
  "/root/repo/src/chksim/support/table.cpp" "src/CMakeFiles/chksim_support.dir/chksim/support/table.cpp.o" "gcc" "src/CMakeFiles/chksim_support.dir/chksim/support/table.cpp.o.d"
  "/root/repo/src/chksim/support/units.cpp" "src/CMakeFiles/chksim_support.dir/chksim/support/units.cpp.o" "gcc" "src/CMakeFiles/chksim_support.dir/chksim/support/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
