# Empty compiler generated dependencies file for chksim_support.
# This may be replaced when dependencies are built.
