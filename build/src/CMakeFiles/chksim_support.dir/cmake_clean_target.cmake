file(REMOVE_RECURSE
  "libchksim_support.a"
)
