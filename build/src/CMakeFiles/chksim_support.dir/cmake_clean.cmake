file(REMOVE_RECURSE
  "CMakeFiles/chksim_support.dir/chksim/support/cli.cpp.o"
  "CMakeFiles/chksim_support.dir/chksim/support/cli.cpp.o.d"
  "CMakeFiles/chksim_support.dir/chksim/support/rng.cpp.o"
  "CMakeFiles/chksim_support.dir/chksim/support/rng.cpp.o.d"
  "CMakeFiles/chksim_support.dir/chksim/support/stats.cpp.o"
  "CMakeFiles/chksim_support.dir/chksim/support/stats.cpp.o.d"
  "CMakeFiles/chksim_support.dir/chksim/support/table.cpp.o"
  "CMakeFiles/chksim_support.dir/chksim/support/table.cpp.o.d"
  "CMakeFiles/chksim_support.dir/chksim/support/units.cpp.o"
  "CMakeFiles/chksim_support.dir/chksim/support/units.cpp.o.d"
  "libchksim_support.a"
  "libchksim_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chksim_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
