file(REMOVE_RECURSE
  "libchksim_noise.a"
)
