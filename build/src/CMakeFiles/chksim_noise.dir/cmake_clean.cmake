file(REMOVE_RECURSE
  "CMakeFiles/chksim_noise.dir/chksim/noise/noise.cpp.o"
  "CMakeFiles/chksim_noise.dir/chksim/noise/noise.cpp.o.d"
  "libchksim_noise.a"
  "libchksim_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chksim_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
