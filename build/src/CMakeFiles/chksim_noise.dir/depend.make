# Empty dependencies file for chksim_noise.
# This may be replaced when dependencies are built.
