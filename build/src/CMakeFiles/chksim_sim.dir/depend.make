# Empty dependencies file for chksim_sim.
# This may be replaced when dependencies are built.
