file(REMOVE_RECURSE
  "CMakeFiles/chksim_sim.dir/chksim/sim/availability.cpp.o"
  "CMakeFiles/chksim_sim.dir/chksim/sim/availability.cpp.o.d"
  "CMakeFiles/chksim_sim.dir/chksim/sim/engine.cpp.o"
  "CMakeFiles/chksim_sim.dir/chksim/sim/engine.cpp.o.d"
  "CMakeFiles/chksim_sim.dir/chksim/sim/goal.cpp.o"
  "CMakeFiles/chksim_sim.dir/chksim/sim/goal.cpp.o.d"
  "CMakeFiles/chksim_sim.dir/chksim/sim/program.cpp.o"
  "CMakeFiles/chksim_sim.dir/chksim/sim/program.cpp.o.d"
  "CMakeFiles/chksim_sim.dir/chksim/sim/timeline.cpp.o"
  "CMakeFiles/chksim_sim.dir/chksim/sim/timeline.cpp.o.d"
  "libchksim_sim.a"
  "libchksim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chksim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
