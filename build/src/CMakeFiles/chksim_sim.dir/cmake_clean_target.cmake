file(REMOVE_RECURSE
  "libchksim_sim.a"
)
