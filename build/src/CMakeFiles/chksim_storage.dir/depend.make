# Empty dependencies file for chksim_storage.
# This may be replaced when dependencies are built.
