# Empty compiler generated dependencies file for chksim_storage.
# This may be replaced when dependencies are built.
