file(REMOVE_RECURSE
  "libchksim_storage.a"
)
