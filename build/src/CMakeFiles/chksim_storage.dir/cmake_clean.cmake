file(REMOVE_RECURSE
  "CMakeFiles/chksim_storage.dir/chksim/storage/pfs.cpp.o"
  "CMakeFiles/chksim_storage.dir/chksim/storage/pfs.cpp.o.d"
  "libchksim_storage.a"
  "libchksim_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chksim_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
