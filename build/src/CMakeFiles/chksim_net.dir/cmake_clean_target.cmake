file(REMOVE_RECURSE
  "libchksim_net.a"
)
