# Empty dependencies file for chksim_net.
# This may be replaced when dependencies are built.
