file(REMOVE_RECURSE
  "CMakeFiles/chksim_net.dir/chksim/net/machines.cpp.o"
  "CMakeFiles/chksim_net.dir/chksim/net/machines.cpp.o.d"
  "CMakeFiles/chksim_net.dir/chksim/net/topology.cpp.o"
  "CMakeFiles/chksim_net.dir/chksim/net/topology.cpp.o.d"
  "libchksim_net.a"
  "libchksim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chksim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
