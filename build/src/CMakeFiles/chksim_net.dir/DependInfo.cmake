
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chksim/net/machines.cpp" "src/CMakeFiles/chksim_net.dir/chksim/net/machines.cpp.o" "gcc" "src/CMakeFiles/chksim_net.dir/chksim/net/machines.cpp.o.d"
  "/root/repo/src/chksim/net/topology.cpp" "src/CMakeFiles/chksim_net.dir/chksim/net/topology.cpp.o" "gcc" "src/CMakeFiles/chksim_net.dir/chksim/net/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chksim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
