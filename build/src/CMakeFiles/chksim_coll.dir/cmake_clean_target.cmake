file(REMOVE_RECURSE
  "libchksim_coll.a"
)
