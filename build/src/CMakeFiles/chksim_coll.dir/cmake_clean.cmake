file(REMOVE_RECURSE
  "CMakeFiles/chksim_coll.dir/chksim/coll/collectives.cpp.o"
  "CMakeFiles/chksim_coll.dir/chksim/coll/collectives.cpp.o.d"
  "libchksim_coll.a"
  "libchksim_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chksim_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
