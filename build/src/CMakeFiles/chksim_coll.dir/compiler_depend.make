# Empty compiler generated dependencies file for chksim_coll.
# This may be replaced when dependencies are built.
