file(REMOVE_RECURSE
  "libchksim_fault.a"
)
