# Empty dependencies file for chksim_fault.
# This may be replaced when dependencies are built.
