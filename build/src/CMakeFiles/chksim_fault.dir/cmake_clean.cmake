file(REMOVE_RECURSE
  "CMakeFiles/chksim_fault.dir/chksim/fault/failures.cpp.o"
  "CMakeFiles/chksim_fault.dir/chksim/fault/failures.cpp.o.d"
  "libchksim_fault.a"
  "libchksim_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chksim_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
