# Empty dependencies file for bench_t01_workload_table.
# This may be replaced when dependencies are built.
