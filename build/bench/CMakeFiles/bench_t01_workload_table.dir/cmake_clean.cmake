file(REMOVE_RECURSE
  "CMakeFiles/bench_t01_workload_table.dir/bench_t01_workload_table.cpp.o"
  "CMakeFiles/bench_t01_workload_table.dir/bench_t01_workload_table.cpp.o.d"
  "bench_t01_workload_table"
  "bench_t01_workload_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t01_workload_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
