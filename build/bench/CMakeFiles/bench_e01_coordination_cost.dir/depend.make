# Empty dependencies file for bench_e01_coordination_cost.
# This may be replaced when dependencies are built.
