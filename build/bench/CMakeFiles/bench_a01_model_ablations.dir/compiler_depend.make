# Empty compiler generated dependencies file for bench_a01_model_ablations.
# This may be replaced when dependencies are built.
