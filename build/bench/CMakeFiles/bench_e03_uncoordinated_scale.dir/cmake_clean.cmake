file(REMOVE_RECURSE
  "CMakeFiles/bench_e03_uncoordinated_scale.dir/bench_e03_uncoordinated_scale.cpp.o"
  "CMakeFiles/bench_e03_uncoordinated_scale.dir/bench_e03_uncoordinated_scale.cpp.o.d"
  "bench_e03_uncoordinated_scale"
  "bench_e03_uncoordinated_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e03_uncoordinated_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
