# Empty compiler generated dependencies file for bench_e03_uncoordinated_scale.
# This may be replaced when dependencies are built.
