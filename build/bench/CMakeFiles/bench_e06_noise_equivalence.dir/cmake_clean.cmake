file(REMOVE_RECURSE
  "CMakeFiles/bench_e06_noise_equivalence.dir/bench_e06_noise_equivalence.cpp.o"
  "CMakeFiles/bench_e06_noise_equivalence.dir/bench_e06_noise_equivalence.cpp.o.d"
  "bench_e06_noise_equivalence"
  "bench_e06_noise_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e06_noise_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
