# Empty dependencies file for bench_e06_noise_equivalence.
# This may be replaced when dependencies are built.
