file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_crossover.dir/bench_e10_crossover.cpp.o"
  "CMakeFiles/bench_e10_crossover.dir/bench_e10_crossover.cpp.o.d"
  "bench_e10_crossover"
  "bench_e10_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
