# Empty compiler generated dependencies file for bench_e10_crossover.
# This may be replaced when dependencies are built.
