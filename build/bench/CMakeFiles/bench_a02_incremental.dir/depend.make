# Empty dependencies file for bench_a02_incremental.
# This may be replaced when dependencies are built.
