file(REMOVE_RECURSE
  "CMakeFiles/bench_a02_incremental.dir/bench_a02_incremental.cpp.o"
  "CMakeFiles/bench_a02_incremental.dir/bench_a02_incremental.cpp.o.d"
  "bench_a02_incremental"
  "bench_a02_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a02_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
