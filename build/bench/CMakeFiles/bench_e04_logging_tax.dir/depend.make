# Empty dependencies file for bench_e04_logging_tax.
# This may be replaced when dependencies are built.
