file(REMOVE_RECURSE
  "CMakeFiles/bench_e04_logging_tax.dir/bench_e04_logging_tax.cpp.o"
  "CMakeFiles/bench_e04_logging_tax.dir/bench_e04_logging_tax.cpp.o.d"
  "bench_e04_logging_tax"
  "bench_e04_logging_tax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e04_logging_tax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
