
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e04_logging_tax.cpp" "bench/CMakeFiles/bench_e04_logging_tax.dir/bench_e04_logging_tax.cpp.o" "gcc" "bench/CMakeFiles/bench_e04_logging_tax.dir/bench_e04_logging_tax.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chksim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chksim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
