# Empty dependencies file for bench_e08_io_contention.
# This may be replaced when dependencies are built.
