# Empty dependencies file for bench_e11_hierarchy_ablation.
# This may be replaced when dependencies are built.
