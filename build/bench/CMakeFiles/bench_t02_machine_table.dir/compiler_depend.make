# Empty compiler generated dependencies file for bench_t02_machine_table.
# This may be replaced when dependencies are built.
