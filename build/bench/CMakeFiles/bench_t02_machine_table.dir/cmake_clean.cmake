file(REMOVE_RECURSE
  "CMakeFiles/bench_t02_machine_table.dir/bench_t02_machine_table.cpp.o"
  "CMakeFiles/bench_t02_machine_table.dir/bench_t02_machine_table.cpp.o.d"
  "bench_t02_machine_table"
  "bench_t02_machine_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t02_machine_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
