file(REMOVE_RECURSE
  "CMakeFiles/bench_e07_interval_sweep.dir/bench_e07_interval_sweep.cpp.o"
  "CMakeFiles/bench_e07_interval_sweep.dir/bench_e07_interval_sweep.cpp.o.d"
  "bench_e07_interval_sweep"
  "bench_e07_interval_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e07_interval_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
