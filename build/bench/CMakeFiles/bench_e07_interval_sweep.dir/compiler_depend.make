# Empty compiler generated dependencies file for bench_e07_interval_sweep.
# This may be replaced when dependencies are built.
