file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_efficiency_scale.dir/bench_e12_efficiency_scale.cpp.o"
  "CMakeFiles/bench_e12_efficiency_scale.dir/bench_e12_efficiency_scale.cpp.o.d"
  "bench_e12_efficiency_scale"
  "bench_e12_efficiency_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_efficiency_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
