# Empty compiler generated dependencies file for bench_e02_coordinated_scale.
# This may be replaced when dependencies are built.
