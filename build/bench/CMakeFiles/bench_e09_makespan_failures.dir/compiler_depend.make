# Empty compiler generated dependencies file for bench_e09_makespan_failures.
# This may be replaced when dependencies are built.
