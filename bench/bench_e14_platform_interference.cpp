// E14 — multi-job platform interference: does machine-wide staggering of
// checkpoint phases beat every job running its per-job-optimal Daly
// interval in phase?
//
// Four jobs (cycled from the workload registry) share one machine whose PFS
// aggregate bandwidth covers exactly ONE job's coordinated burst at full
// node speed: whenever two jobs' bursts overlap, the arbiter has to stretch
// or queue them. Every job checkpoints at its own Daly-optimal interval —
// the per-job-rational choice — and the stagger axis shifts job j's phase
// by stagger * (j/N) * interval. Expected shape: with bursts in phase
// (stagger 0) the exclusive policies serialise the whole burst train and
// fair-share stretches everyone; spreading the phases (stagger 1) recovers
// most of the lost machine efficiency without touching any job's interval.
// A second table replays the mix with job-level failures: one job rolls
// back and its restart read (arbiter priority 0) contends with the
// neighbours' ongoing checkpoint writes.
#include "bench_util.hpp"

#include "chksim/core/platform_study.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;
  const benchutil::BenchOptions opt = benchutil::parse_options(argc, argv);
  if (!opt.critical_path_out.empty())
    std::cerr << "E14 drives the platform study — no single focus run to "
                 "trace; --critical-path-out ignored.\n";
  benchutil::banner("E14",
                    "multi-job PFS interference: staggering vs per-job Daly");

  const int njobs = 4;
  const int ranks_per_job = opt.smoke ? 16 : 32;
  const int ranks = opt.ranks > 0 ? opt.ranks : ranks_per_job;

  // Machine: checkpoint sized so one write takes ~15% of a 5 ms design
  // interval at node speed, PFS sized to carry exactly one job's coordinated
  // burst, and node MTBF chosen so the per-job Daly optimum lands near the
  // design interval (the workload then spans several checkpoint periods).
  const TimeNs design_interval = 5_ms;
  const double duty = 0.15;
  net::MachineModel machine = benchutil::scaled_machine(
      net::infiniband_system(), design_interval, duty, /*uncontended=*/false);
  machine.pfs_bw_bytes_per_s = machine.node_bw_bytes_per_s * ranks;
  const double delta_s = duty * units::to_seconds(design_interval);
  const double mtbf_target_s =
      units::to_seconds(design_interval) * units::to_seconds(design_interval) /
      (2.0 * delta_s);
  machine.node_mtbf_hours = mtbf_target_s * ranks / 3600.0;

  core::ProtocolSpec protocol;
  protocol.kind = ckpt::ProtocolKind::kCoordinated;
  protocol.interval_policy = ckpt::IntervalPolicy::kDaly;

  const TimeNs daly = ckpt::choose_interval(
      ckpt::IntervalPolicy::kDaly, ckpt::ProtocolKind::kCoordinated, machine, ranks);
  const workload::StdParams params = benchutil::sized_params(
      ranks, daly, opt.smoke ? 4 : 6, 1_ms, 8_KiB);

  std::cout << "machine=" << machine.name << " jobs=" << njobs << "x" << ranks
            << " ranks protocol=coordinated interval=daly("
            << units::format_time(daly) << ")"
            << " pfs_bw=" << benchutil::fixed(machine.pfs_bw_bytes_per_s / 1e9, 1)
            << " GB/s (= 1 job burst)\n\n";

  const std::vector<core::PlatformJobSpec> mix =
      core::make_job_mix({}, njobs, ranks, params, protocol);
  const double staggers[] = {0.0, 0.5, 1.0};

  Table t({"arbiter", "stagger", "machine_eff", "ckpt_waste_ns", "contention_ns",
           "mean_slowdown", "max_slowdown", "rounds"});
  struct Point {
    storage::ArbiterPolicy policy;
    double stagger;
    double efficiency;
  };
  std::vector<Point> points;
  for (const storage::ArbiterPolicy policy : storage::all_arbiter_policies()) {
    for (const double stagger : staggers) {
      core::PlatformConfig cfg;
      cfg.machine = machine;
      cfg.jobs = mix;
      cfg.arbiter = policy;
      cfg.stagger_frac = stagger;
      cfg.threads = opt.jobs;
      cfg.shards = opt.shards;
      const core::PlatformBreakdown b = core::run_platform_study(cfg);

      double mean_slowdown = 0, max_slowdown = 0;
      TimeNs contention = 0;
      for (const core::PlatformJobBreakdown& j : b.jobs) {
        mean_slowdown += j.slowdown / njobs;
        max_slowdown = std::max(max_slowdown, j.slowdown);
        contention += j.storage_contention;
      }
      t.row() << storage::to_string(policy) << benchutil::fixed(stagger, 2)
              << benchutil::pct(b.machine_efficiency)
              << benchutil::fixed(b.waste_checkpoint_node_s, 6)
              << benchutil::fixed(b.waste_contention_node_s, 6)
              << benchutil::fixed(mean_slowdown, 4)
              << benchutil::fixed(max_slowdown, 4) << std::int64_t{b.rounds};
      points.push_back({policy, stagger, b.machine_efficiency});
    }
  }
  std::cout << t.to_ascii() << "\n";

  // The E14 answer, per policy: efficiency with phases spread (stagger 1)
  // minus efficiency with every job at its in-phase Daly optimum.
  for (const storage::ArbiterPolicy policy : storage::all_arbiter_policies()) {
    double at0 = 0, at1 = 0;
    for (const Point& p : points) {
      if (p.policy != policy) continue;
      if (p.stagger == 0.0) at0 = p.efficiency;
      if (p.stagger == 1.0) at1 = p.efficiency;
    }
    std::cout << "verdict[" << storage::to_string(policy)
              << "]: staggering moves machine efficiency " << benchutil::pct(at0)
              << " -> " << benchutil::pct(at1) << " ("
              << (at1 >= at0 ? "+" : "") << benchutil::fixed((at1 - at0) * 100, 2)
              << " pp vs in-phase per-job Daly)\n";
  }

  // Failure replay under contention: shrink the per-job MTBF so a few
  // failures land inside the run; each rollback replays bursts and pushes a
  // restart read (priority 0) through the arbiter against the neighbours'
  // writes. Deterministic: failure times come from seeded substreams.
  std::cout << "\nfailure replay (fcfs, stagger 0, per-job MTBF ~ 4 intervals)\n";
  net::MachineModel faulty = machine;
  faulty.node_mtbf_hours =
      4.0 * units::to_seconds(daly) * ranks / 3600.0;
  // The preset's relaunch cost (minutes) would swamp a ms-scale run; shrink
  // it so the contended restart READ is what the table shows.
  faulty.restart_seconds = 0.5e-3;
  core::PlatformConfig fcfg;
  fcfg.machine = faulty;
  fcfg.jobs = mix;
  fcfg.arbiter = storage::ArbiterPolicy::kFcfs;
  fcfg.stagger_frac = 0;
  fcfg.failures = true;
  fcfg.failure_seed = 42;
  fcfg.threads = opt.jobs;
  fcfg.shards = opt.shards;
  const core::PlatformBreakdown fb = core::run_platform_study(fcfg);

  Table ft({"job", "workload", "bursts", "commits", "failures", "lost",
            "restart", "queue_wait", "contention", "wall_makespan"});
  for (const core::PlatformJobBreakdown& j : fb.jobs) {
    ft.row() << std::int64_t{j.job} << j.workload << j.bursts << j.commits
             << j.failures << units::format_time(j.lost)
             << units::format_time(j.restart) << units::format_time(j.queue_wait)
             << units::format_time(j.storage_contention)
             << units::format_time(j.wall_makespan);
  }
  std::cout << ft.to_ascii();
  std::cout << "machine: efficiency=" << benchutil::pct(fb.machine_efficiency)
            << " waste[ckpt=" << benchutil::fixed(fb.waste_checkpoint_node_s, 6)
            << " contention=" << benchutil::fixed(fb.waste_contention_node_s, 6)
            << " failure=" << benchutil::fixed(fb.waste_failure_node_s, 6)
            << "] node-s, pfs[requests=" << fb.pfs_requests
            << " peak_active=" << fb.pfs_peak_active
            << " preemptions=" << fb.pfs_preemptions << "]\n";
  return 0;
}
