// E5 — Delay propagation: how far does one rank's checkpoint reach?
//
// Inject a single blackout of varying duration on one rank in the middle of
// the run. Metrics:
//   * global_delay: makespan extension (the victim itself is always delayed,
//     so this is ~the blackout whenever the victim ends on the critical
//     path);
//   * spread: mean finish-time delay of the OTHER ranks — the true
//     propagation breadth;
//   * wait attribution (chksim::obs): the perturbed run's total recv_wait
//     decomposed into the share caused directly by the victim's blackout
//     (wait[blk]), the share that arrived transitively through intermediate
//     ranks (wait[prop]), and the wire/structural share a delay-free run
//     would also have had (wait[net]).
// Expected shape: EP spreads nothing until its final reduction; the
// wavefront sweep absorbs small blackouts entirely in pipeline slack; halo
// and allreduce propagate to everyone (spread ~ blackout). In the
// attribution columns that appears as halo/allreduce shifting wait from
// net to blk+prop as the blackout grows, with prop >> blk once the delay
// travels multiple hops.
#include "bench_util.hpp"

#include "chksim/noise/noise.hpp"
#include "chksim/obs/attribution.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;
  const benchutil::BenchOptions opt = benchutil::parse_options(argc, argv);
  benchutil::banner("E5", "single-rank blackout propagation vs workload coupling");

  const net::MachineModel machine = net::infiniband_system();
  // --ranks overrides the scale for at-scale kappa measurement (2^18+ ranks
  // with --shards N); the grid then shrinks to the canonical halo3d cell so
  // the traced runs stay within the RSS budget.
  const bool at_scale = opt.ranks > 0;
  const int ranks = at_scale ? opt.ranks : (opt.smoke ? 64 : 256);
  const sim::RankId victim = ranks / 2;
  // The smoke grid keeps the coupled workloads at blackout sizes well above
  // the per-iteration slack, where the delay lands on the critical path and
  // the two kappa measurements below must agree.
  const std::vector<const char*> workloads =
      at_scale  ? std::vector<const char*>{"halo3d"}
      : opt.smoke ? std::vector<const char*>{"halo3d", "allreduce"}
                : std::vector<const char*>{"ep", "sweep2d", "halo3d", "allreduce"};
  const std::vector<TimeNs> durations =
      at_scale  ? std::vector<TimeNs>{10_ms}
      : opt.smoke ? std::vector<TimeNs>{3_ms, 10_ms}
                : std::vector<TimeNs>{100_us, 300_us, 1_ms, 3_ms, 10_ms};
  const int iterations = at_scale ? 6 : 30;

  sim::EngineConfig base;
  base.net = machine.net;
  base.shards = opt.shards;

  // Stage 1: the unperturbed reference runs (one per workload; the blackout
  // window, the spread columns, and the kappa_path baselines all derive
  // from them). Traced, so each workload has a base critical path.
  std::vector<sim::Program> programs;
  for (const char* wl : workloads) {
    workload::StdParams params;
    params.ranks = ranks;
    params.iterations = iterations;
    params.compute = 1_ms;
    params.bytes = 8_KiB;
    programs.push_back(workload::make_workload(wl, params));
    programs.back().finalize();
  }
  std::vector<sim::RunResult> base_runs(workloads.size());
  std::vector<obs::CriticalPath> base_paths(workloads.size());
  par::for_each_index(static_cast<std::int64_t>(workloads.size()), opt.jobs,
                      [&](std::int64_t i) {
                        const std::size_t wl = static_cast<std::size_t>(i);
                        obs::EventTracer tracer(ranks);
                        sim::EngineConfig cfg = base;
                        cfg.trace = &tracer;
                        base_runs[wl] = sim::run_program(programs[wl], cfg);
                        base_paths[wl] = obs::extract_critical_path(tracer);
                      });

  // Stage 2: every (workload, duration) is an independent traced run with a
  // private tracer; each slot keeps only its row's derived numbers.
  struct Row {
    TimeNs delay = 0;
    double spread = 0;
    double kappa_path = 0;
    double share_blk = 0, share_prop = 0, share_net = 0;
  };
  std::vector<Row> rows(workloads.size() * durations.size());
  par::for_each_index(
      static_cast<std::int64_t>(rows.size()), opt.jobs, [&](std::int64_t slot) {
        const std::size_t wl = static_cast<std::size_t>(slot) / durations.size();
        const TimeNs dur = durations[static_cast<std::size_t>(slot) % durations.size()];
        const sim::RunResult& r0 = base_runs[wl];
        const TimeNs start = r0.makespan / 3;
        const auto noise =
            noise::make_single_blackout(ranks, victim, {start, start + dur});
        sim::EngineConfig cfg = base;
        cfg.blackouts = noise.get();
        obs::EventTracer tracer(ranks);
        cfg.trace = &tracer;
        const sim::RunResult r1 = sim::run_program(programs[wl], cfg);
        Row& row = rows[static_cast<std::size_t>(slot)];
        row.delay = r1.makespan - r0.makespan;
        for (int r = 0; r < ranks; ++r) {
          if (r == victim) continue;
          row.spread +=
              static_cast<double>(r1.ranks[static_cast<std::size_t>(r)].finish_time -
                                  r0.ranks[static_cast<std::size_t>(r)].finish_time);
        }
        row.spread /= (ranks - 1);
        // kappa two ways: the model fit is delay/blackout from the makespans
        // (the "delay/blackout" column); the direct measurement walks both
        // runs' critical paths and charges only the non-compute growth.
        row.kappa_path =
            obs::direct_kappa(obs::extract_critical_path(tracer), base_paths[wl], dur);
        const obs::WaitAttribution att = obs::attribute_waits(tracer);
        row.share_blk = att.share_sender_blackout();
        row.share_prop = att.share_propagated();
        row.share_net = att.share_network();
      });

  Table t({"workload", "blackout", "base", "global_delay", "kappa_model",
           "kappa_path", "spread(non-victim)", "spread/blackout", "wait[blk]",
           "wait[prop]", "wait[net]"});
  for (std::size_t wl = 0; wl < workloads.size(); ++wl) {
    for (std::size_t d = 0; d < durations.size(); ++d) {
      const Row& row = rows[wl * durations.size() + d];
      const TimeNs dur = durations[d];
      t.row() << workloads[wl] << units::format_time(dur)
              << units::format_time(base_runs[wl].makespan)
              << units::format_time(row.delay)
              << benchutil::fixed(
                     static_cast<double>(row.delay) / static_cast<double>(dur), 2)
              << benchutil::fixed(row.kappa_path, 2)
              << units::format_time(static_cast<TimeNs>(row.spread))
              << benchutil::fixed(row.spread / static_cast<double>(dur), 2)
              << benchutil::pct(row.share_blk) << benchutil::pct(row.share_prop)
              << benchutil::pct(row.share_net);
    }
  }
  std::cout << t.to_ascii();
  std::cout << "\n(kappa_model = makespan delay / blackout; kappa_path = the same "
               "ratio measured\n directly on the two runs' critical paths — they "
               "should agree once the blackout\n exceeds the pipeline slack.)\n";

  if (!opt.critical_path_out.empty()) {
    // Focus cell: halo3d at the largest blackout — the canonical
    // full-propagation chain (victim blackout -> every neighbour waits).
    std::size_t wl = 0;
    for (std::size_t i = 0; i < workloads.size(); ++i)
      if (std::string(workloads[i]) == "halo3d") wl = i;
    const TimeNs dur = durations.back();
    const TimeNs start = base_runs[wl].makespan / 3;
    const auto noise =
        noise::make_single_blackout(ranks, victim, {start, start + dur});
    sim::EngineConfig cfg = base;
    cfg.blackouts = noise.get();
    benchutil::write_engine_critical_path(opt, programs[wl], cfg);
  }
  return 0;
}
