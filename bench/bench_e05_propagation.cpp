// E5 — Delay propagation: how far does one rank's checkpoint reach?
//
// Inject a single blackout of varying duration on one rank in the middle of
// the run. Two metrics:
//   * global_delay: makespan extension (the victim itself is always delayed,
//     so this is ~the blackout whenever the victim ends on the critical
//     path);
//   * spread: mean finish-time delay of the OTHER ranks — the true
//     propagation breadth.
// Expected shape: EP spreads nothing until its final reduction; the
// wavefront sweep absorbs small blackouts entirely in pipeline slack; halo
// and allreduce propagate to everyone (spread ~ blackout).
#include "bench_util.hpp"

#include "chksim/noise/noise.hpp"

int main() {
  using namespace chksim;
  using namespace chksim::literals;
  benchutil::banner("E5", "single-rank blackout propagation vs workload coupling");

  const net::MachineModel machine = net::infiniband_system();
  const int ranks = 256;
  const sim::RankId victim = ranks / 2;

  Table t({"workload", "blackout", "base", "global_delay", "delay/blackout",
           "spread(non-victim)", "spread/blackout"});
  for (const char* wl : {"ep", "sweep2d", "halo3d", "allreduce"}) {
    workload::StdParams params;
    params.ranks = ranks;
    params.iterations = 30;
    params.compute = 1_ms;
    params.bytes = 8_KiB;
    sim::Program program = workload::make_workload(wl, params);
    program.finalize();

    sim::EngineConfig base;
    base.net = machine.net;
    const sim::RunResult r0 = sim::run_program(program, base);

    for (TimeNs dur : {100_us, 300_us, 1_ms, 3_ms, 10_ms}) {
      const TimeNs start = r0.makespan / 3;
      const auto noise =
          noise::make_single_blackout(ranks, victim, {start, start + dur});
      sim::EngineConfig cfg = base;
      cfg.blackouts = noise.get();
      const sim::RunResult r1 = sim::run_program(program, cfg);
      const TimeNs delay = r1.makespan - r0.makespan;
      double spread = 0;
      for (int r = 0; r < ranks; ++r) {
        if (r == victim) continue;
        spread += static_cast<double>(r1.ranks[static_cast<std::size_t>(r)].finish_time -
                                      r0.ranks[static_cast<std::size_t>(r)].finish_time);
      }
      spread /= (ranks - 1);
      t.row() << wl << units::format_time(dur) << units::format_time(r0.makespan)
              << units::format_time(delay)
              << benchutil::fixed(static_cast<double>(delay) / static_cast<double>(dur),
                                  2)
              << units::format_time(static_cast<TimeNs>(spread))
              << benchutil::fixed(spread / static_cast<double>(dur), 2);
    }
  }
  std::cout << t.to_ascii();
  return 0;
}
