// E5 — Delay propagation: how far does one rank's checkpoint reach?
//
// Inject a single blackout of varying duration on one rank in the middle of
// the run. Metrics:
//   * global_delay: makespan extension (the victim itself is always delayed,
//     so this is ~the blackout whenever the victim ends on the critical
//     path);
//   * spread: mean finish-time delay of the OTHER ranks — the true
//     propagation breadth;
//   * wait attribution (chksim::obs): the perturbed run's total recv_wait
//     decomposed into the share caused directly by the victim's blackout
//     (wait[blk]), the share that arrived transitively through intermediate
//     ranks (wait[prop]), and the wire/structural share a delay-free run
//     would also have had (wait[net]).
// Expected shape: EP spreads nothing until its final reduction; the
// wavefront sweep absorbs small blackouts entirely in pipeline slack; halo
// and allreduce propagate to everyone (spread ~ blackout). In the
// attribution columns that appears as halo/allreduce shifting wait from
// net to blk+prop as the blackout grows, with prop >> blk once the delay
// travels multiple hops.
#include "bench_util.hpp"

#include "chksim/noise/noise.hpp"
#include "chksim/obs/attribution.hpp"

int main() {
  using namespace chksim;
  using namespace chksim::literals;
  benchutil::banner("E5", "single-rank blackout propagation vs workload coupling");

  const net::MachineModel machine = net::infiniband_system();
  const int ranks = 256;
  const sim::RankId victim = ranks / 2;

  Table t({"workload", "blackout", "base", "global_delay", "delay/blackout",
           "spread(non-victim)", "spread/blackout", "wait[blk]", "wait[prop]",
           "wait[net]"});
  for (const char* wl : {"ep", "sweep2d", "halo3d", "allreduce"}) {
    workload::StdParams params;
    params.ranks = ranks;
    params.iterations = 30;
    params.compute = 1_ms;
    params.bytes = 8_KiB;
    sim::Program program = workload::make_workload(wl, params);
    program.finalize();

    sim::EngineConfig base;
    base.net = machine.net;
    const sim::RunResult r0 = sim::run_program(program, base);

    for (TimeNs dur : {100_us, 300_us, 1_ms, 3_ms, 10_ms}) {
      const TimeNs start = r0.makespan / 3;
      const auto noise =
          noise::make_single_blackout(ranks, victim, {start, start + dur});
      sim::EngineConfig cfg = base;
      cfg.blackouts = noise.get();
      obs::EventTracer tracer(ranks);
      cfg.trace = &tracer;
      const sim::RunResult r1 = sim::run_program(program, cfg);
      const TimeNs delay = r1.makespan - r0.makespan;
      double spread = 0;
      for (int r = 0; r < ranks; ++r) {
        if (r == victim) continue;
        spread += static_cast<double>(r1.ranks[static_cast<std::size_t>(r)].finish_time -
                                      r0.ranks[static_cast<std::size_t>(r)].finish_time);
      }
      spread /= (ranks - 1);
      const obs::WaitAttribution att = obs::attribute_waits(tracer);
      t.row() << wl << units::format_time(dur) << units::format_time(r0.makespan)
              << units::format_time(delay)
              << benchutil::fixed(static_cast<double>(delay) / static_cast<double>(dur),
                                  2)
              << units::format_time(static_cast<TimeNs>(spread))
              << benchutil::fixed(spread / static_cast<double>(dur), 2)
              << benchutil::pct(att.share_sender_blackout())
              << benchutil::pct(att.share_propagated())
              << benchutil::pct(att.share_network());
    }
  }
  std::cout << t.to_ascii();
  return 0;
}
