// E11 — Hierarchical clustering ablation: cluster size from 1 (pure
// uncoordinated) to P (pure coordinated).
//
// At 1024 ranks, sweep the cluster size with a fixed inter-cluster logging
// tax. Expected shape: larger clusters align more blackouts (lower
// propagation on coupled apps) and log less traffic (halo3d's neighbours
// are mostly intra-cluster at c >= 64), at the price of more concurrent
// writers and wider coordination — a U-shaped total with the sweet spot in
// the middle; for the random workload (no locality) the logging saving is
// much weaker.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;
  const benchutil::BenchOptions opt = benchutil::parse_options(argc, argv);
  benchutil::banner("E11", "cluster-size ablation for hierarchical checkpointing");

  const TimeNs interval = 10_ms;
  const double duty = 0.08;
  const int ranks = 1024;
  const std::vector<const char*> workloads = {"halo3d", "random"};
  const std::vector<int> clusters = {1, 4, 16, 64, 256, 1024};

  std::vector<core::StudyConfig> cells;
  for (const char* wl : workloads) {
    for (int cluster : clusters) {
      core::StudyConfig cfg;
      // Contended PFS (uncontended=false): large clusters pay the
      // concurrent-writer penalty that offsets their alignment benefit.
      cfg.machine = benchutil::scaled_machine(net::infiniband_system(), interval, duty,
                                              /*uncontended=*/false);
      cfg.workload = wl;
      cfg.params = benchutil::sized_params(ranks, interval, 4, 1_ms, 8_KiB);
      cfg.protocol.kind = ckpt::ProtocolKind::kHierarchical;
      cfg.protocol.cluster_size = cluster;
      cfg.protocol.fixed_interval = interval;
      cfg.protocol.log_per_message = 2_us;  // inter-cluster traffic only
      cells.push_back(cfg);
    }
  }
  const std::vector<core::Breakdown> results = core::run_sweep(cells, opt.jobs);

  Table t({"workload", "cluster", "coord_time", "duty", "slowdown", "propagation"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::Breakdown& b = results[i];
    t.row() << b.workload << std::int64_t{clusters[i % clusters.size()]}
            << units::format_time(b.coordination_time) << benchutil::pct(b.duty_cycle)
            << benchutil::fixed(b.slowdown)
            << benchutil::fixed(b.propagation_factor, 2);
  }
  std::cout << t.to_ascii();

  // Focus cell for --critical-path-out: halo3d at cluster size 1 (pure
  // uncoordinated), the worst-propagation end of the ablation.
  benchutil::write_focus_critical_path(opt, cells.front());
  return 0;
}
