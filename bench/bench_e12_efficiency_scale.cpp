// E12 — Machine efficiency at extreme scale.
//
// The scale model: propagation factors (kappa) are measured by engine
// simulation at 1024 ranks for a coupled workload, then the protocols'
// duty cycles, coordination costs, and failure processes are evaluated
// analytically from 2^8 to 2^20 nodes with Daly-chosen intervals.
// Expected shape: the classic efficiency collapse as MTBF shrinks and the
// write duty grows; coordinated collapses first (burst I/O), uncoordinated
// and hierarchical stretch further, burst buffers further still;
// "io-wall" marks scales where the offered checkpoint load exceeds the
// file system entirely.
#include "bench_util.hpp"

#include "chksim/analytic/replication.hpp"
#include "chksim/core/scale_model.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;
  const benchutil::BenchOptions opt = benchutil::parse_options(argc, argv);
  benchutil::banner("E12", "efficiency vs node count, measured kappa + analytic scale model");

  // 1) Measure kappa at an engine-feasible scale with each schedule shape
  // (two independent studies — one sweep).
  const TimeNs sim_interval = 10_ms;
  const double sim_duty = 0.08;
  const int kappa_ranks = opt.ranks > 0 ? opt.ranks : 1024;
  double kappa_aligned = 1.0;
  double kappa_random = 1.0;
  {
    core::StudyConfig cfg;
    cfg.machine = benchutil::scaled_machine(net::infiniband_system(), sim_interval,
                                            sim_duty);
    cfg.workload = "halo3d";
    cfg.params = benchutil::sized_params(kappa_ranks, sim_interval, 4, 1_ms, 8_KiB);
    cfg.shards = opt.shards;
    cfg.protocol.kind = ckpt::ProtocolKind::kCoordinated;
    cfg.protocol.fixed_interval = sim_interval;
    std::vector<core::StudyConfig> cells = {cfg, cfg};
    cells[1].protocol.kind = ckpt::ProtocolKind::kUncoordinated;
    const std::vector<core::Breakdown> kappas = core::run_sweep(cells, opt.jobs);
    kappa_aligned = kappas[0].propagation_factor;
    kappa_random = kappas[1].propagation_factor;
    // Focus cell for --critical-path-out: the uncoordinated kappa run.
    benchutil::write_focus_critical_path(opt, cells[1]);
  }
  std::cout << "measured kappa (halo3d @ " << kappa_ranks
            << "): aligned=" << benchutil::fixed(kappa_aligned, 2)
            << " random=" << benchutil::fixed(kappa_random, 2) << "\n\n";

  // 2) Analytic extrapolation.
  const net::MachineModel machine = net::exascale_projection();
  Table t({"nodes", "mtbf(min)", "coordinated", "uncoordinated", "hierarchical(c=64)",
           "coordinated+BB", "2x-replication"});
  for (int exp = 8; exp <= 20; exp += 2) {
    const int nodes = 1 << exp;
    auto eff = [&](ckpt::ProtocolKind kind, bool bb, double kappa) -> std::string {
      core::ScaleModelConfig cfg;
      cfg.machine = machine;
      cfg.protocol.kind = kind;
      cfg.protocol.interval_policy = ckpt::IntervalPolicy::kDaly;
      cfg.protocol.cluster_size = 64;
      if (bb) cfg.protocol.tier = storage::StorageTier::kBurstBuffer;
      cfg.kappa = kappa;
      cfg.trials = 150;
      cfg.seed = 99;
      cfg.jobs = opt.jobs;
      try {
        return benchutil::fixed(core::efficiency_at_scale(cfg, nodes).efficiency, 3);
      } catch (const std::invalid_argument&) {
        return "io-wall";   // offered ckpt load exceeds PFS bandwidth
      } catch (const std::runtime_error&) {
        return "collapse";  // MTBF below per-failure recovery: no progress
      }
    };
    t.row() << std::int64_t{nodes}
            << benchutil::fixed(machine.system_mtbf_seconds(nodes) / 60, 1)
            << eff(ckpt::ProtocolKind::kCoordinated, false, kappa_aligned)
            << eff(ckpt::ProtocolKind::kUncoordinated, false, kappa_random)
            << eff(ckpt::ProtocolKind::kHierarchical, false, kappa_random)
            << eff(ckpt::ProtocolKind::kCoordinated, true, kappa_aligned)
            << [&] {
                 // The whole machine runs the app at half width, replicated.
                 analytic::ReplicationInputs rin;
                 rin.app_ranks = nodes / 2;
                 rin.node_mtbf_seconds = machine.node_mtbf_hours * 3600.0;
                 rin.rebuild_seconds = 600;
                 rin.ckpt_seconds = units::to_seconds(
                     ckpt::tier_write_time(storage::StorageTier::kBurstBuffer, machine));
                 rin.restart_seconds = machine.restart_seconds;
                 return benchutil::fixed(analytic::replication_efficiency(rin), 3);
               }();
  }
  std::cout << t.to_ascii();
  return 0;
}
