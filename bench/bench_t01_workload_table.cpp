// T1 — Workload characterisation table.
//
// For each registry workload at 64 ranks: operation counts, message rate,
// bytes, dependency-graph depth, communication/computation balance, and
// finish skew — the properties that determine how each responds to
// checkpoint perturbation (cross-reference E3/E5).
#include "bench_util.hpp"

#include "chksim/workload/characterize.hpp"

int main() {
  using namespace chksim;
  using namespace chksim::literals;
  benchutil::banner("T1", "workload characterisation at 64 ranks");

  sim::EngineConfig engine;
  engine.net = net::infiniband_system().net;

  Table t({"workload", "ops", "msgs/rank/s", "MB/rank/s", "depth", "comm_frac",
           "recv_wait", "finish_skew", "description"});
  for (const std::string& wl : workload::workload_names()) {
    workload::StdParams params;
    params.ranks = 64;
    params.iterations = 10;
    params.compute = 1_ms;
    params.bytes = 8_KiB;
    const workload::Characterization c =
        workload::characterize_workload(wl, params, engine);
    t.row() << wl << c.ops << benchutil::fixed(c.msgs_per_rank_per_second, 0)
            << benchutil::fixed(c.bytes_per_rank_per_second / 1e6, 1)
            << c.dependency_depth << benchutil::pct(c.comm_fraction)
            << benchutil::pct(c.recv_wait_fraction)
            << units::format_time(static_cast<TimeNs>(c.finish_skew_ns))
            << workload::workload_description(wl);
  }
  std::cout << t.to_ascii();
  return 0;
}
