// E3 — Application slowdown from UNCOORDINATED checkpointing versus scale,
// with message logging disabled (isolating the schedule-spread effect).
//
// Same settings as E2 but random per-rank checkpoint phases. Expected
// shape: at the same duty cycle, the *unaligned* blackouts desynchronise
// tightly coupled applications — each iteration waits for whichever
// neighbour is currently checkpointing — so the propagation factor exceeds
// the coordinated case for communication-intensive workloads and grows
// with scale, while EP is unaffected. This is the paper's central
// "communication effect": skipping coordination does not skip the cost.
#include "bench_util.hpp"

int main() {
  using namespace chksim;
  using namespace chksim::literals;
  benchutil::banner("E3",
                    "uncoordinated checkpointing overhead vs scale (no logging tax)");

  const TimeNs interval = 10_ms;
  const double duty = 0.10;

  Table t({"workload", "ranks", "duty", "slowdown(coord)", "slowdown(uncoord)",
           "prop(coord)", "prop(uncoord)"});
  for (const char* wl : {"halo3d", "hpccg", "sweep2d", "ep"}) {
    for (int ranks : {64, 256, 1024, 4096}) {
      core::StudyConfig cfg;
      cfg.machine = benchutil::scaled_machine(net::infiniband_system(), interval, duty);
      cfg.workload = wl;
      cfg.params = benchutil::sized_params(ranks, interval, 4, 1_ms, 8_KiB);
      cfg.protocol.kind = ckpt::ProtocolKind::kCoordinated;
      cfg.protocol.fixed_interval = interval;
      const core::Breakdown co = core::run_study(cfg);
      cfg.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
      const core::Breakdown un = core::run_study(cfg);
      t.row() << wl << std::int64_t{ranks} << benchutil::pct(un.duty_cycle)
              << benchutil::fixed(co.slowdown) << benchutil::fixed(un.slowdown)
              << benchutil::fixed(co.propagation_factor, 2)
              << benchutil::fixed(un.propagation_factor, 2);
    }
  }
  std::cout << t.to_ascii();
  return 0;
}
