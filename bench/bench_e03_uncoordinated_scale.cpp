// E3 — Application slowdown from UNCOORDINATED checkpointing versus scale,
// with message logging disabled (isolating the schedule-spread effect).
//
// Same settings as E2 but random per-rank checkpoint phases. Expected
// shape: at the same duty cycle, the *unaligned* blackouts desynchronise
// tightly coupled applications — each iteration waits for whichever
// neighbour is currently checkpointing — so the propagation factor exceeds
// the coordinated case for communication-intensive workloads and grows
// with scale, while EP is unaffected. This is the paper's central
// "communication effect": skipping coordination does not skip the cost.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;
  const benchutil::BenchOptions opt = benchutil::parse_options(argc, argv);
  benchutil::banner("E3",
                    "uncoordinated checkpointing overhead vs scale (no logging tax)");

  const TimeNs interval = 10_ms;
  const double duty = 0.10;

  const std::vector<const char*> workloads =
      opt.smoke ? std::vector<const char*>{"halo3d"}
                : std::vector<const char*>{"halo3d", "hpccg", "sweep2d", "ep"};
  std::vector<int> scales =
      opt.smoke ? std::vector<int>{64, 256} : std::vector<int>{64, 256, 1024, 4096};
  if (opt.ranks > 0) scales = {opt.ranks};

  // Two cells per row: coordinated at 2i, uncoordinated at 2i + 1.
  std::vector<core::StudyConfig> cells;
  for (const char* wl : workloads) {
    for (int ranks : scales) {
      core::StudyConfig cfg;
      cfg.machine = benchutil::scaled_machine(net::infiniband_system(), interval, duty);
      cfg.workload = wl;
      cfg.params = benchutil::sized_params(ranks, interval, 4, 1_ms, 8_KiB);
      cfg.shards = opt.shards;
      cfg.protocol.kind = ckpt::ProtocolKind::kCoordinated;
      cfg.protocol.fixed_interval = interval;
      cells.push_back(cfg);
      cfg.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
      cells.push_back(cfg);
    }
  }
  const std::vector<core::Breakdown> results = core::run_sweep(cells, opt.jobs);

  Table t({"workload", "ranks", "duty", "slowdown(coord)", "slowdown(uncoord)",
           "prop(coord)", "prop(uncoord)"});
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const core::Breakdown& co = results[i];
    const core::Breakdown& un = results[i + 1];
    t.row() << co.workload << std::int64_t{co.ranks} << benchutil::pct(un.duty_cycle)
            << benchutil::fixed(co.slowdown) << benchutil::fixed(un.slowdown)
            << benchutil::fixed(co.propagation_factor, 2)
            << benchutil::fixed(un.propagation_factor, 2);
  }
  std::cout << t.to_ascii();

  // Focus cell for --critical-path-out: the smallest UNcoordinated halo3d
  // run (cells[1]) — the schedule-spread effect this bench is about.
  benchutil::write_focus_critical_path(opt, cells[1]);
  return 0;
}
