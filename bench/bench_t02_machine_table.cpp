// T2 — Machine / model parameter table.
//
// The LogGOPS, storage, and reliability parameters of every machine preset,
// plus topology-derived effective latencies. These are the inputs every
// E-experiment derives from.
#include "bench_util.hpp"

#include "chksim/net/topology.hpp"

int main() {
  using namespace chksim;
  using namespace chksim::literals;
  benchutil::banner("T2", "machine model parameters");

  Table t({"machine", "L", "o", "g", "G(ns/B)", "S", "ckpt/node", "node_bw(GB/s)",
           "pfs_bw(GB/s)", "bb_bw(GB/s)", "node_mtbf(h)", "restart(s)"});
  for (const net::MachineModel& m : net::all_machines()) {
    t.row() << m.name << units::format_time(m.net.L) << units::format_time(m.net.o)
            << units::format_time(m.net.g) << benchutil::fixed(m.net.G, 2)
            << units::format_bytes(m.net.S) << units::format_bytes(m.ckpt_bytes_per_node)
            << benchutil::fixed(m.node_bw_bytes_per_s / 1e9, 1)
            << benchutil::fixed(m.pfs_bw_bytes_per_s / 1e9, 0)
            << benchutil::fixed(m.bb_bw_bytes_per_s / 1e9, 1)
            << benchutil::fixed(m.node_mtbf_hours, 0)
            << benchutil::fixed(m.restart_seconds, 0);
  }
  std::cout << t.to_ascii() << "\n";

  Table topo({"topology", "nodes", "mean_hops", "diameter", "effective_L(+100ns/hop)"});
  const sim::LogGOPSParams base = net::infiniband_system().net;
  {
    net::FullyConnected fc(4096);
    topo.row() << fc.name() << std::int64_t{4096} << benchutil::fixed(fc.mean_hops(), 2)
               << fc.diameter()
               << units::format_time(net::effective_params(base, fc, 100).L);
  }
  {
    net::Torus tr = net::Torus::near_cubic(4096);
    topo.row() << tr.name() << std::int64_t{4096} << benchutil::fixed(tr.mean_hops(), 2)
               << tr.diameter()
               << units::format_time(net::effective_params(base, tr, 100).L);
  }
  {
    net::FatTree ft(4096, 32);
    topo.row() << ft.name() << std::int64_t{4096} << benchutil::fixed(ft.mean_hops(), 2)
               << ft.diameter()
               << units::format_time(net::effective_params(base, ft, 100).L);
  }
  {
    net::Dragonfly df(4096, 64, 4);
    topo.row() << df.name() << std::int64_t{4096} << benchutil::fixed(df.mean_hops(), 2)
               << df.diameter()
               << units::format_time(net::effective_params(base, df, 100).L);
  }
  std::cout << topo.to_ascii();
  return 0;
}
