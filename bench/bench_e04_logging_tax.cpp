// E4 — The message-logging tax.
//
// Uncoordinated checkpointing must log messages; this sweeps the per-message
// (and per-byte) sender-side logging cost and measures the resulting
// slowdown on three workloads with very different message profiles:
// hpccg (latency-sensitive small allreduces + halo), halo3d (message-rate
// heavy), fft (byte-heavy alltoall). No blackouts are injected — the tax is
// measured in isolation.
//
// Expected shape: the tax scales with message rate; beyond a few
// microseconds per message the communication-intensive workloads slow down
// by tens of percent, eroding (and eventually erasing) uncoordinated
// checkpointing's advantage. The receiver-side ablation column shows where
// the charge lands matters less than that it lands on the critical path.
#include "bench_util.hpp"

#include "chksim/ckpt/logging_tax.hpp"

int main() {
  using namespace chksim;
  using namespace chksim::literals;
  benchutil::banner("E4", "message-logging tax vs per-message cost");

  const net::MachineModel machine = net::infiniband_system();

  Table t({"workload", "tax/msg", "tax/KiB", "slowdown(sender)", "slowdown(recv)",
           "msgs/rank/s"});
  for (const char* wl : {"hpccg", "halo3d", "fft"}) {
    workload::StdParams params;
    params.ranks = 256;
    params.iterations = 30;
    params.compute = 1_ms;
    params.bytes = std::string(wl) == "fft" ? Bytes{16_KiB} : Bytes{8_KiB};
    sim::Program program = workload::make_workload(wl, params);
    program.finalize();

    sim::EngineConfig base;
    base.net = machine.net;
    const sim::RunResult r0 = sim::run_program(program, base);

    const double msg_rate =
        static_cast<double>(program.stats().sends) / 256 /
        units::to_seconds(r0.makespan);

    for (TimeNs tax_msg : {0_us, 1_us, 2_us, 5_us, 10_us, 20_us}) {
      ckpt::LoggingTaxConfig tc;
      tc.per_message = tax_msg;
      tc.per_byte_ns = 0.05;  // 50 ns per KiB
      ckpt::LoggingTax sender_tax(tc);
      tc.receiver_side = true;
      ckpt::LoggingTax recv_tax(tc);

      sim::EngineConfig cfg = base;
      cfg.tax = &sender_tax;
      const sim::RunResult rs = sim::run_program(program, cfg);
      cfg.tax = &recv_tax;
      const sim::RunResult rr = sim::run_program(program, cfg);

      t.row() << wl << units::format_time(tax_msg) << "51.2 ns"
              << benchutil::fixed(static_cast<double>(rs.makespan) /
                                  static_cast<double>(r0.makespan))
              << benchutil::fixed(static_cast<double>(rr.makespan) /
                                  static_cast<double>(r0.makespan))
              << benchutil::fixed(msg_rate, 0);
    }
  }
  std::cout << t.to_ascii();
  return 0;
}
