// E4 — The message-logging tax.
//
// Uncoordinated checkpointing must log messages; this sweeps the per-message
// (and per-byte) sender-side logging cost and measures the resulting
// slowdown on three workloads with very different message profiles:
// hpccg (latency-sensitive small allreduces + halo), halo3d (message-rate
// heavy), fft (byte-heavy alltoall). No blackouts are injected — the tax is
// measured in isolation.
//
// Expected shape: the tax scales with message rate; beyond a few
// microseconds per message the communication-intensive workloads slow down
// by tens of percent, eroding (and eventually erasing) uncoordinated
// checkpointing's advantage. The receiver-side ablation column shows where
// the charge lands matters less than that it lands on the critical path.
#include "bench_util.hpp"

#include "chksim/ckpt/logging_tax.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;
  const benchutil::BenchOptions opt = benchutil::parse_options(argc, argv);
  benchutil::banner("E4", "message-logging tax vs per-message cost");

  const net::MachineModel machine = net::infiniband_system();
  const std::vector<const char*> workloads = {"hpccg", "halo3d", "fft"};
  const std::vector<TimeNs> taxes = {0_us, 1_us, 2_us, 5_us, 10_us, 20_us};

  // Stage 1: one base (untaxed) run per workload.
  std::vector<sim::Program> programs;
  for (const char* wl : workloads) {
    workload::StdParams params;
    params.ranks = 256;
    params.iterations = 30;
    params.compute = 1_ms;
    params.bytes = std::string(wl) == "fft" ? Bytes{16_KiB} : Bytes{8_KiB};
    programs.push_back(workload::make_workload(wl, params));
    programs.back().finalize();
  }
  sim::EngineConfig base;
  base.net = machine.net;
  std::vector<sim::RunResult> base_runs(workloads.size());
  par::for_each_index(static_cast<std::int64_t>(workloads.size()), opt.jobs,
                      [&](std::int64_t i) {
                        base_runs[static_cast<std::size_t>(i)] = sim::run_program(
                            programs[static_cast<std::size_t>(i)], base);
                      });

  // Stage 2: every (workload, tax, side) is an independent engine run over
  // the shared read-only program; slot index = ((wl * taxes) + tax) * 2 + side.
  std::vector<TimeNs> makespans(workloads.size() * taxes.size() * 2);
  par::for_each_index(static_cast<std::int64_t>(makespans.size()), opt.jobs,
                      [&](std::int64_t slot) {
                        const std::size_t side = static_cast<std::size_t>(slot) % 2;
                        const std::size_t cell = static_cast<std::size_t>(slot) / 2;
                        const std::size_t wl = cell / taxes.size();
                        ckpt::LoggingTaxConfig tc;
                        tc.per_message = taxes[cell % taxes.size()];
                        tc.per_byte_ns = 0.05;  // 50 ns per KiB
                        tc.receiver_side = side == 1;
                        ckpt::LoggingTax tax(tc);
                        sim::EngineConfig cfg = base;
                        cfg.tax = &tax;
                        makespans[static_cast<std::size_t>(slot)] =
                            sim::run_program(programs[wl], cfg).makespan;
                      });

  Table t({"workload", "tax/msg", "tax/KiB", "slowdown(sender)", "slowdown(recv)",
           "msgs/rank/s"});
  for (std::size_t wl = 0; wl < workloads.size(); ++wl) {
    const sim::RunResult& r0 = base_runs[wl];
    const double msg_rate = static_cast<double>(programs[wl].stats().sends) / 256 /
                            units::to_seconds(r0.makespan);
    for (std::size_t tax = 0; tax < taxes.size(); ++tax) {
      const std::size_t slot = (wl * taxes.size() + tax) * 2;
      t.row() << workloads[wl] << units::format_time(taxes[tax]) << "51.2 ns"
              << benchutil::fixed(static_cast<double>(makespans[slot]) /
                                  static_cast<double>(r0.makespan))
              << benchutil::fixed(static_cast<double>(makespans[slot + 1]) /
                                  static_cast<double>(r0.makespan))
              << benchutil::fixed(msg_rate, 0);
    }
  }
  std::cout << t.to_ascii();

  if (!opt.critical_path_out.empty()) {
    // Focus cell: halo3d (message-rate heavy) under a 5 us sender-side tax.
    ckpt::LoggingTaxConfig tc;
    tc.per_message = 5_us;
    tc.per_byte_ns = 0.05;
    ckpt::LoggingTax tax(tc);
    sim::EngineConfig cfg = base;
    cfg.tax = &tax;
    benchutil::write_engine_critical_path(opt, programs[1], cfg);
  }
  return 0;
}
