# Determinism check: run BENCH once per value in JOBS_LIST of the FLAG
# (default --jobs) and fail unless every run's stdout is byte-identical to
# the first run's.
#
#   cmake -DBENCH=<path> -DARGS="--smoke" -DJOBS_LIST="1,2,8"
#         -DWORK_DIR=<dir> [-DFLAG=--shards] [-DCRITICAL_PATH=1]
#         -P compare_jobs.cmake
#
# JOBS_LIST is comma-separated: a semicolon CMake list passed through
# add_test arrives here with escaped separators ("1\;2\;8"), which foreach
# silently treats as ONE value — the loop then runs once and compares
# nothing. Commas survive the trip intact.
#
# FLAG selects which axis is swept: "--jobs" gates thread-count determinism,
# "--shards" gates PDES shard-count determinism. Anything the harness parses
# works.
#
# With CRITICAL_PATH=1 every run additionally gets a per-value
# --critical-path-out file, and the blame report AND the flow-stitched
# Chrome trace are byte-compared across values alongside stdout.
if(NOT DEFINED BENCH OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "compare_jobs.cmake: BENCH and WORK_DIR are required")
endif()
if(NOT DEFINED JOBS_LIST)
  set(JOBS_LIST "1,2,8")
endif()
if(NOT DEFINED FLAG)
  set(FLAG "--jobs")
endif()
string(REPLACE "," ";" jobs_values "${JOBS_LIST}")
list(LENGTH jobs_values jobs_count)
if(jobs_count LESS 2)
  message(FATAL_ERROR
    "compare_jobs.cmake: JOBS_LIST=\"${JOBS_LIST}\" has ${jobs_count} "
    "value(s); a determinism comparison needs at least two")
endif()
separate_arguments(extra_args UNIX_COMMAND "${ARGS}")

get_filename_component(bench_name "${BENCH}" NAME_WE)
# File tag for the swept flag: "--jobs" -> jobs, "--shards" -> shards.
string(REGEX REPLACE "^--" "" flag_tag "${FLAG}")

# compare_to_reference(<label> <reference> <candidate>)
function(compare_to_reference label reference candidate)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${reference}" "${candidate}"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
      "${bench_name}: ${label} differs across ${FLAG} values "
      "(${reference} vs ${candidate})")
  endif()
endfunction()

set(reference "")
set(cp_reference "")
foreach(jobs ${jobs_values})
  set(out_file "${WORK_DIR}/${bench_name}_${flag_tag}${jobs}.out")
  set(run_args ${extra_args})
  if(CRITICAL_PATH)
    set(cp_file "${WORK_DIR}/${bench_name}_${flag_tag}${jobs}.cp.json")
    list(APPEND run_args --critical-path-out "${cp_file}")
  endif()
  execute_process(
    COMMAND "${BENCH}" ${run_args} ${FLAG} ${jobs}
    OUTPUT_FILE "${out_file}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${bench_name} ${FLAG} ${jobs} exited with ${rc}")
  endif()
  if(CRITICAL_PATH AND NOT EXISTS "${cp_file}")
    message(FATAL_ERROR "${bench_name} ${FLAG} ${jobs}: no ${cp_file} written")
  endif()
  if(reference STREQUAL "")
    set(reference "${out_file}")
    set(cp_reference "${cp_file}")
  else()
    compare_to_reference("stdout" "${reference}" "${out_file}")
    if(CRITICAL_PATH)
      compare_to_reference("critical-path report" "${cp_reference}" "${cp_file}")
      compare_to_reference("flow trace" "${cp_reference}.trace.json"
                           "${cp_file}.trace.json")
    endif()
  endif()
endforeach()
message(STATUS "${bench_name}: byte-identical output for ${FLAG} {${jobs_values}}")
