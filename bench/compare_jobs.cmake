# Determinism check: run BENCH with each --jobs value in JOBS_LIST and fail
# unless every run's stdout is byte-identical to the --jobs 1 run.
#
#   cmake -DBENCH=<path> -DARGS="--smoke" -DJOBS_LIST="1;2;8"
#         -DWORK_DIR=<dir> -P compare_jobs.cmake
if(NOT DEFINED BENCH OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "compare_jobs.cmake: BENCH and WORK_DIR are required")
endif()
if(NOT DEFINED JOBS_LIST)
  set(JOBS_LIST 1 2 8)
endif()
separate_arguments(extra_args UNIX_COMMAND "${ARGS}")

get_filename_component(bench_name "${BENCH}" NAME_WE)
set(reference "")
foreach(jobs ${JOBS_LIST})
  set(out_file "${WORK_DIR}/${bench_name}_jobs${jobs}.out")
  execute_process(
    COMMAND "${BENCH}" ${extra_args} --jobs ${jobs}
    OUTPUT_FILE "${out_file}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${bench_name} --jobs ${jobs} exited with ${rc}")
  endif()
  if(reference STREQUAL "")
    set(reference "${out_file}")
  else()
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files "${reference}" "${out_file}"
      RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
      message(FATAL_ERROR
        "${bench_name}: output differs between --jobs 1 and --jobs ${jobs} "
        "(${reference} vs ${out_file})")
    endif()
  endif()
endforeach()
message(STATUS "${bench_name}: byte-identical output for --jobs {${JOBS_LIST}}")
