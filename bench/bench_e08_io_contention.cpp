// E8 — I/O contention shape: burst vs spread vs clustered vs burst buffer.
//
// Per-node checkpoint write time versus system size under the shared-PFS
// bandwidth model, for (a) coordinated bursts (all P write at once),
// (b) uncoordinated spread (fixed-point concurrency at a 1 h interval),
// (c) hierarchical clusters of 64, and (d) node-local burst buffers.
// Expected shape: the coordinated burst grows linearly once the aggregate
// limit binds; spread writes stay near the node-bound time until offered
// load approaches capacity ("infeasible" marks where checkpointing every
// hour exceeds the PFS entirely); burst buffers are flat.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;
  // E8 is closed-form storage arithmetic — nothing worth parallelising —
  // but it accepts the standard flags so every bench has a uniform CLI.
  const benchutil::BenchOptions opt = benchutil::parse_options(argc, argv);
  if (!opt.critical_path_out.empty())
    std::cerr << "E8 is closed-form only — no engine run to trace; "
                 "--critical-path-out ignored.\n";
  benchutil::banner("E8", "checkpoint write time vs scale by I/O shape");

  const net::MachineModel machine = net::exascale_projection();
  const storage::Pfs pfs = ckpt::pfs_of(machine);
  const Bytes bytes = machine.ckpt_bytes_per_node;
  const TimeNs tau = 3600_s;

  std::cout << "machine=" << machine.name
            << " bytes/node=" << units::format_bytes(bytes)
            << " node_bw=" << benchutil::fixed(machine.node_bw_bytes_per_s / 1e9, 1)
            << " GB/s pfs_bw=" << benchutil::fixed(machine.pfs_bw_bytes_per_s / 1e12, 1)
            << " TB/s interval=1h\n\n";

  Table t({"nodes", "coordinated_burst", "uncoordinated_spread", "hierarchical(c=64)",
           "burst_buffer", "partner_copy", "pfs_utilization"});
  for (int exp = 8; exp <= 20; exp += 2) {
    const int nodes = 1 << exp;
    const auto burst = pfs.concurrent_write(bytes, nodes);

    std::string spread = "infeasible";
    std::string hier = "infeasible";
    const double util = storage::pfs_utilization(pfs.params(), bytes, nodes, tau);
    if (util < 1.0) {
      spread = units::format_time(pfs.spread_write(bytes, nodes, tau).per_node);
      const int clusters = (nodes + 63) / 64;
      hier = units::format_time(
          pfs.spread_write_groups(bytes, 64, clusters, tau).per_node);
    }
    t.row() << std::int64_t{nodes} << units::format_time(burst.per_node) << spread
            << hier << units::format_time(pfs.burst_buffer_write(bytes).per_node)
            << units::format_time(
                   ckpt::tier_write_time(storage::StorageTier::kPartner, machine))
            << benchutil::pct(util);
  }
  std::cout << t.to_ascii();
  return 0;
}
