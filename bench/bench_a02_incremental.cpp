// A2 — Incremental checkpointing ablation.
//
// Sweep the full-checkpoint cadence and delta size for coordinated and
// uncoordinated protocols on halo3d. Expected shape: increments cut the
// duty cycle (and thus the slowdown) roughly in proportion to the mean
// blackout; the uncoordinated protocol benefits MORE in absolute terms
// because its unaligned blackouts are amplified — shrinking them attacks
// the amplified term directly.
#include "bench_util.hpp"

int main() {
  using namespace chksim;
  using namespace chksim::literals;
  benchutil::banner("A2", "incremental checkpointing: full/delta cadence sweep");

  const TimeNs interval = 10_ms;
  const double duty = 0.10;  // duty of a FULL checkpoint
  const int ranks = 256;

  Table t({"protocol", "full_every", "delta_frac", "mean_blackout", "duty",
           "slowdown"});
  for (int proto = 0; proto < 2; ++proto) {
    for (const auto& [every, frac] :
         std::vector<std::pair<int, double>>{
             {1, 1.0}, {2, 0.25}, {5, 0.25}, {10, 0.25}, {10, 0.05}}) {
      core::StudyConfig cfg;
      cfg.machine = benchutil::scaled_machine(net::infiniband_system(), interval, duty);
      cfg.workload = "halo3d";
      cfg.params = benchutil::sized_params(ranks, interval, 4, 1_ms, 8_KiB);
      cfg.protocol.kind = proto == 0 ? ckpt::ProtocolKind::kCoordinated
                                     : ckpt::ProtocolKind::kUncoordinated;
      cfg.protocol.fixed_interval = interval;
      cfg.protocol.incremental.full_every = every;
      cfg.protocol.incremental.delta_fraction = frac;
      const core::Breakdown b = core::run_study(cfg);
      t.row() << b.protocol << std::int64_t{every} << benchutil::fixed(frac, 2)
              << units::format_time(b.blackout) << benchutil::pct(b.duty_cycle)
              << benchutil::fixed(b.slowdown);
    }
  }
  std::cout << t.to_ascii();
  return 0;
}
