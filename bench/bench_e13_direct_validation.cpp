// E13 — Direct vs decoupled failure-model validation.
//
// The whole methodology rests on a decomposition: simulate the checkpoint
// perturbation failure-free (slowdown sigma), then layer failures on with
// the analytic renewal model. E13 checks that decomposition against ground
// truth: the direct simulator (fault::direct) injects the same exponential
// failure process into the *running* DES — coordinated runs roll every rank
// back to the last committed snapshot, uncoordinated/hierarchical runs take
// the failed rank/cluster out for restart + replay-from-log — and the two
// makespan distributions are compared per protocol x workload x MTBF.
//
// Expected shape: close agreement (single-digit relative error) for
// coordinated under exponential failures, where the renewal model is exact
// up to commit-phase discreteness; uncoordinated/hierarchical divergence is
// bounded by the difference between the model's uniform lost-work
// assumption and the actual checkpoint phase plus the DES-level stall
// propagation of the outage (peers wait only where the dependency graph
// says so). Divergence cases are documented in docs/MODEL.md.
#include "bench_util.hpp"

#include "chksim/core/failure_study.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;
  const benchutil::BenchOptions opt = benchutil::parse_options(argc, argv);
  benchutil::banner("E13", "is the decoupled failure model faithful to in-DES failures?");

  const TimeNs interval = 10_ms;
  const double duty = 0.08;

  const std::vector<const char*> workloads{"halo3d", "hpccg"};
  const int ranks = opt.ranks > 0 ? opt.ranks : (opt.smoke ? 32 : 64);
  const int trials = opt.smoke ? 6 : 25;
  // System MTBF in the simulated frame: the runs cover ~4 checkpoint
  // periods (~40 ms), so these MTBFs yield roughly 0.5-2 failures/trial.
  const std::vector<double> mtbf_seconds =
      opt.smoke ? std::vector<double>{0.030} : std::vector<double>{0.030, 0.090};

  std::vector<core::FailureStudyConfig> cells;
  for (const char* wl : workloads) {
    for (int proto = 0; proto < 3; ++proto) {
      for (const double mtbf : mtbf_seconds) {
        core::FailureStudyConfig cfg;
        cfg.mode = core::FailureModel::kDirect;
        cfg.study.machine =
            benchutil::scaled_machine(net::infiniband_system(), interval, duty);
        // Failures must land inside the short simulated horizon: dial the
        // node MTBF so the system MTBF equals `mtbf`, and use a restart
        // cost on the same scale as one checkpoint interval.
        cfg.study.machine.node_mtbf_hours = mtbf * ranks / 3600.0;
        cfg.study.machine.restart_seconds = 0.002;
        cfg.study.workload = wl;
        cfg.study.params = benchutil::sized_params(ranks, interval, 4, 1_ms, 8_KiB);
        switch (proto) {
          case 0:
            cfg.study.protocol.kind = ckpt::ProtocolKind::kCoordinated;
            break;
          case 1:
            cfg.study.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
            cfg.study.protocol.log_per_message = 1_us;
            break;
          case 2:
            cfg.study.protocol.kind = ckpt::ProtocolKind::kHierarchical;
            cfg.study.protocol.cluster_size = 16;
            cfg.study.protocol.log_per_message = 1_us;
            break;
        }
        cfg.study.protocol.fixed_interval = interval;
        cfg.trials = trials;
        cfg.seed = 7;
        cells.push_back(cfg);
      }
    }
  }
  const std::vector<core::DirectFailureStudyResult> results =
      core::run_direct_failure_sweep(cells, opt.jobs);

  Table t({"workload", "ranks", "protocol", "mtbf(ms)", "fails/trial",
           "direct(ms)", "decoupled(ms)", "rel_err"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::DirectFailureStudyResult& r = results[i];
    t.row() << r.breakdown.workload << std::int64_t{r.breakdown.ranks}
            << r.breakdown.protocol
            << benchutil::fixed(r.system_mtbf_seconds * 1e3, 0)
            << benchutil::fixed(r.direct.mean_failures, 2)
            << benchutil::fixed(r.direct.mean_seconds * 1e3, 3)
            << benchutil::fixed(r.decoupled.mean_seconds * 1e3, 3)
            << benchutil::pct(r.relative_error);
  }
  std::cout << t.to_ascii();

  // Focus cell for --critical-path-out: the failure-free perturbation run of
  // the first cell (coordinated halo3d at the stressed MTBF).
  benchutil::write_focus_critical_path(opt, cells.front().study);
  return 0;
}
