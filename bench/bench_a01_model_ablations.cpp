// A1 — Ablations of the modelling choices flagged in DESIGN.md §4.
//
//  (a) preemptive vs non-preemptive blackouts,
//  (b) dissemination vs tree coordination,
//  (c) sender- vs receiver-side logging (engine-level; see also E4),
//  (d) eager/rendezvous threshold S.
// Expected shape: each choice shifts constants, not conclusions — the
// justification for the defaults.
#include "bench_util.hpp"

#include "chksim/ckpt/logging_tax.hpp"

int main() {
  using namespace chksim;
  using namespace chksim::literals;
  benchutil::banner("A1", "model-choice ablations");

  const TimeNs interval = 10_ms;
  const double duty = 0.08;
  const int ranks = 256;

  {
    Table t({"ablation", "variant", "slowdown"});
    for (const auto pre : {sim::Preemption::kPreemptive, sim::Preemption::kNonPreemptive}) {
      core::StudyConfig cfg;
      cfg.machine = benchutil::scaled_machine(net::infiniband_system(), interval, duty);
      cfg.workload = "halo3d";
      cfg.params = benchutil::sized_params(ranks, interval, 4, 1_ms, 8_KiB);
      cfg.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
      cfg.protocol.fixed_interval = interval;
      cfg.preemption = pre;
      const core::Breakdown b = core::run_study(cfg);
      t.row() << "blackout preemption"
              << (pre == sim::Preemption::kPreemptive ? "preemptive" : "non-preemptive")
              << benchutil::fixed(b.slowdown);
    }
    std::cout << t.to_ascii() << "\n";
  }

  {
    Table t({"ablation", "variant", "coordination_cost@16Ki", "coordination_cost@1Mi"});
    const sim::LogGOPSParams net = net::infiniband_system().net;
    t.row() << "sync algorithm" << "dissemination"
            << units::format_time(analytic::barrier_dissemination_cost(net, 1 << 14))
            << units::format_time(analytic::barrier_dissemination_cost(net, 1 << 20));
    t.row() << "sync algorithm" << "tree"
            << units::format_time(analytic::barrier_tree_cost(net, 1 << 14))
            << units::format_time(analytic::barrier_tree_cost(net, 1 << 20));
    std::cout << t.to_ascii() << "\n";
  }

  {
    // Rendezvous threshold: a bandwidth-bound exchange with messages just
    // under vs just over S.
    Table t({"ablation", "S", "msg", "makespan"});
    for (const Bytes S : {Bytes{4_KiB}, Bytes{64_KiB}, Bytes{1_MiB}}) {
      for (const Bytes msg : {Bytes{32_KiB}, Bytes{128_KiB}}) {
        workload::Halo3dConfig wcfg;
        wcfg.ranks = 64;
        wcfg.iterations = 10;
        wcfg.compute_per_iter = 200_us;
        wcfg.halo_bytes = msg;
        sim::Program p = workload::make_halo3d(wcfg);
        p.finalize();
        sim::EngineConfig cfg;
        cfg.net = net::infiniband_system().net;
        cfg.net.S = S;
        const sim::RunResult r = sim::run_program(p, cfg);
        t.row() << "eager/rendezvous threshold" << units::format_bytes(S)
                << units::format_bytes(msg) << units::format_time(r.makespan);
      }
    }
    std::cout << t.to_ascii();
  }
  return 0;
}
