// Engine microbenchmarks: simulator throughput in EVENTS per second (the
// native unit of DES cost — every op execution and message arrival is one
// queue pop) for representative workloads and scales, plus the wall-clock of
// a parallel sweep batch at the requested --jobs. Not an experiment table —
// this bounds how far the direct simulation can reach and justifies the E12
// extrapolation strategy.
//
// Each case is measured in two phases:
//   build — workload generation + Program::finalize() (DAG construction);
//   run   — the DES itself on the finalized program.
// Alongside the timings we report the finalized program's storage footprint
// (bytes per op, from Program::storage_bytes()) and the process peak RSS,
// which together determine the largest scale that fits in memory.
//
// With --json-out the measurements are written machine-readably (the
// "results"/"sweep" objects embedded in BENCH_perf.json); the committed
// BENCH_perf.json pairs one such report from the seed engine ("before") with
// one from the current engine ("after").
//
// --ranks N restricts the sweep to the single case halo3d@N, and
// --rss-budget-mib M fails the run (exit 1) if peak RSS exceeds M MiB;
// together they power the ctest memory gate for large-scale builds.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "chksim/core/fabric_plan.hpp"
#include "chksim/core/study.hpp"
#include "chksim/net/flow/flownet.hpp"
#include "chksim/net/machines.hpp"
#include "chksim/sim/engine.hpp"
#include "chksim/support/cli.hpp"
#include "chksim/support/parallel.hpp"
#include "chksim/workload/workloads.hpp"

namespace {

using namespace chksim;
using namespace chksim::literals;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Peak resident set size of this process, from /proc (0 if unavailable).
std::int64_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream is(line.substr(6));
      std::int64_t kb = 0;
      is >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

/// Reset the kernel's VmHWM high-water mark to the current RSS so the next
/// peak_rss_bytes() read is attributable to the code between the two calls
/// (per-measurement peaks instead of one process-lifetime number). Needs a
/// writable /proc/self/clear_refs; if unavailable the read silently degrades
/// to the process-wide peak, which is still an upper bound.
void reset_peak_rss() {
  std::ofstream clear("/proc/self/clear_refs");
  if (clear) clear << "5";
}

struct Measurement {
  std::string workload;
  int ranks = 0;
  int shards = 1;                   // PDES shard count (1 = serial engine)
  bool flow = false;                // flow-level fabric instead of analytic
  std::int64_t ops = 0;             // ops in the program
  std::int64_t events = 0;          // events processed per run
  std::int64_t storage_bytes = 0;   // finalized Program footprint
  double bytes_per_op = 0;
  double build_ms_median = 0;       // generation + finalize
  double wall_ms_median = 0;        // DES run
  double events_per_sec = 0;
  int repeats = 0;
  // Memory provenance for this row (the pdes.* working-set gauges).
  std::int64_t peak_rss = 0;            // VmHWM across this row's run phase
  std::int64_t ws_bytes = 0;            // engine capacity census after a run
  std::int64_t ws_match_slot_peak = 0;  // pooled match slots, max over shards
  std::int64_t shard_heap_peak = 0;     // per-shard pending-event high-water
  std::int64_t supersteps = 0;          // PDES supersteps (0 = serial engine)
  double barrier_ms = 0;                // wall time inside the merge barrier
};

Measurement measure(const std::string& workload, int ranks, int repeats,
                    int shards, std::int64_t rss_budget_mib, bool flow) {
  workload::StdParams params;
  params.ranks = ranks;
  params.iterations = 10;
  params.compute = 1_ms;
  params.bytes = 8_KiB;

  Measurement m;
  m.workload = workload;
  m.ranks = ranks;
  m.shards = shards;
  m.flow = flow;
  m.repeats = repeats;

  // Build phase: generate + finalize a fresh program per repetition.
  sim::Program p(1);
  std::vector<double> builds;
  for (int rep = 0; rep < repeats; ++rep) {
    const Clock::time_point t0 = Clock::now();
    sim::Program fresh = workload::make_workload(workload, params);
    const sim::ProgramStats st = fresh.finalize();
    builds.push_back(ms_since(t0));
    m.ops = st.ops;
    p = std::move(fresh);
  }
  std::sort(builds.begin(), builds.end());
  m.build_ms_median = builds[builds.size() / 2];
  m.storage_bytes = static_cast<std::int64_t>(p.storage_bytes());
  m.bytes_per_op =
      m.ops > 0 ? static_cast<double>(m.storage_bytes) / static_cast<double>(m.ops) : 0;

  // Run phase: the DES on the (shared, read-only) finalized program. The
  // budget is enforced up front by the engine (fail-fast estimate) and again
  // on measured RSS by the caller.
  sim::EngineConfig cfg;
  cfg.net = net::infiniband_system().net;
  cfg.shards = shards;
  cfg.rss_budget_mib = rss_budget_mib;
  // Flow mode: route every message over the explicit fabric and take arrival
  // times from the max-min solver. The Router (immutable route tables) is
  // built once and each repetition gets a fresh FlowNet (mutable solver
  // state), both outside the timed region — the measured delta vs analytic
  // is the in-loop solver cost, not setup.
  core::FabricPlan plan;
  std::unique_ptr<net::flow::Router> router;
  if (flow) {
    core::FlowSpec spec;
    spec.mode = core::NetworkMode::kFlow;
    plan = core::plan_fabric(net::infiniband_system(), ranks, spec);
    router = std::make_unique<net::flow::Router>(plan.router);
  }
  std::vector<double> walls;
  reset_peak_rss();
  for (int rep = 0; rep < repeats; ++rep) {
    std::unique_ptr<net::flow::FlowNet> fnet;
    if (flow) {
      fnet = std::make_unique<net::flow::FlowNet>(router.get(), plan.net);
      cfg.fabric = fnet.get();
    }
    const Clock::time_point t0 = Clock::now();
    const sim::RunResult r = sim::run_program(p, cfg);
    walls.push_back(ms_since(t0));
    m.events = r.events_processed;
    m.ws_bytes = r.ws_bytes;
    m.ws_match_slot_peak = r.ws_match_slot_peak;
    m.shard_heap_peak =
        r.pdes_shards > 1 ? r.pdes_shard_heap_peak : r.event_heap_peak;
    m.supersteps = r.pdes_shards > 1 ? r.pdes_supersteps : 0;
    m.barrier_ms = static_cast<double>(r.pdes_barrier_ns) / 1e6;
  }
  m.peak_rss = peak_rss_bytes();
  std::sort(walls.begin(), walls.end());
  m.wall_ms_median = walls[walls.size() / 2];
  m.events_per_sec = static_cast<double>(m.events) / (m.wall_ms_median / 1000.0);
  return m;
}

/// Wall-clock of a run_sweep batch (the E2/E9-style usage pattern) at the
/// requested concurrency.
double measure_sweep_ms(int cells, int jobs) {
  std::vector<core::StudyConfig> configs;
  for (int i = 0; i < cells; ++i) {
    core::StudyConfig cfg;
    // Scale the checkpoint write to ~10% of the interval (as the E-benches
    // do) so the blackout fits the scaled-down 10 ms period.
    cfg.machine.ckpt_bytes_per_node = static_cast<Bytes>(
        0.10 * units::to_seconds(TimeNs{10_ms}) * cfg.machine.node_bw_bytes_per_s);
    cfg.machine.pfs_bw_bytes_per_s = cfg.machine.node_bw_bytes_per_s * 1e7;
    cfg.workload = "halo3d";
    cfg.params.ranks = 256;
    cfg.params.iterations = 10;
    cfg.params.compute = 1_ms;
    cfg.params.bytes = 8_KiB;
    cfg.protocol.kind = ckpt::ProtocolKind::kCoordinated;
    cfg.protocol.fixed_interval = 10_ms;
    configs.push_back(cfg);
  }
  const Clock::time_point t0 = Clock::now();
  core::run_sweep(configs, jobs);
  return ms_since(t0);
}

std::string json_report(const std::vector<Measurement>& results, int jobs,
                        int sweep_cells, double sweep_ms, std::int64_t rss) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"chksim-bench-perf-v1\",\n"
      << "  \"jobs\": " << jobs << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    char buf[704];
    std::snprintf(buf, sizeof buf,
                  "    {\"workload\": \"%s\", \"ranks\": %d, \"shards\": %d, "
                  "\"network\": \"%s\", \"ops\": %lld, "
                  "\"events\": %lld, \"build_ms_median\": %.2f, "
                  "\"wall_ms_median\": %.2f, \"events_per_sec\": %.0f, "
                  "\"bytes_per_op\": %.1f, \"storage_bytes\": %lld, "
                  "\"repeats\": %d, \"peak_rss_bytes\": %lld, "
                  "\"ws_bytes\": %lld, \"ws_match_slot_peak\": %lld, "
                  "\"shard_heap_peak\": %lld, \"supersteps\": %lld, "
                  "\"barrier_ms\": %.2f}%s\n",
                  m.workload.c_str(), m.ranks, m.shards,
                  m.flow ? "flow" : "analytic", static_cast<long long>(m.ops),
                  static_cast<long long>(m.events), m.build_ms_median,
                  m.wall_ms_median, m.events_per_sec, m.bytes_per_op,
                  static_cast<long long>(m.storage_bytes), m.repeats,
                  static_cast<long long>(m.peak_rss),
                  static_cast<long long>(m.ws_bytes),
                  static_cast<long long>(m.ws_match_slot_peak),
                  static_cast<long long>(m.shard_heap_peak),
                  static_cast<long long>(m.supersteps), m.barrier_ms,
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "  \"sweep\": {\"cells\": %d, \"jobs\": %d, \"wall_ms\": %.2f},\n"
                "  \"peak_rss_bytes\": %lld\n",
                sweep_cells, jobs, sweep_ms, static_cast<long long>(rss));
  out << buf << "}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.flag("jobs", "0", "concurrency for the sweep measurement; 0 = all cores")
      .flag("repeats", "5", "timed repetitions per engine measurement")
      .flag("smoke", "false", "small scales only (for regression tests)")
      .flag("ranks", "0", "measure only halo3d at this rank count (0 = full case list)")
      .flag("rss-budget-mib", "0",
            "fail (exit 1) if the engine's upfront working-set estimate or "
            "the measured peak RSS exceeds this many MiB")
      .flag("max-ws-mib", "0",
            "fail (exit 1) if any row's engine working set exceeds this many "
            "MiB (0 = off)")
      .flag("max-shard-heap", "0",
            "fail (exit 1) if any row's per-shard pending-event high-water "
            "exceeds this count (0 = off)")
      .flag("sweep-cells", "8", "cells in the run_sweep wall-clock measurement")
      .flag("network", "analytic",
            "engine network model for every measurement: analytic | flow "
            "(explicit-fabric max-min solver; rows are tagged \"+flow\")")
      .flag("shards", "1", "PDES shard count for every engine measurement (1 = serial)")
      .flag("shard-sweep", "",
            "comma-separated shard counts (e.g. 1,2,4,8): re-measure each case "
            "at every count — the PDES shard-scaling sweep")
      .flag("json-out", "", "write the machine-readable report to this path");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    return 2;
  }
  const int jobs = par::resolve_jobs(static_cast<int>(cli.get_int("jobs")));
  const int repeats = std::max(1, static_cast<int>(cli.get_int("repeats")));
  const bool smoke = cli.get_bool("smoke");
  const int only_ranks = static_cast<int>(cli.get_int("ranks"));
  const std::int64_t rss_budget_mib = cli.get_int("rss-budget-mib");
  const std::int64_t max_ws_mib = cli.get_int("max-ws-mib");
  const std::int64_t max_shard_heap = cli.get_int("max-shard-heap");
  const int sweep_cells = std::max(1, static_cast<int>(cli.get_int("sweep-cells")));
  const std::string network = cli.get("network");
  if (network != "analytic" && network != "flow") {
    std::cerr << "--network must be analytic or flow\n";
    return 2;
  }
  const bool flow = network == "flow";
  // Shard counts to measure each case at: --shard-sweep wins, else --shards.
  std::vector<int> shard_counts;
  {
    const std::string sweep_spec = cli.get("shard-sweep");
    std::istringstream is(sweep_spec);
    std::string tok;
    while (std::getline(is, tok, ',')) {
      if (tok.empty()) continue;
      const int s = std::stoi(tok);
      if (s < 1) {
        std::cerr << "--shard-sweep values must be >= 1\n";
        return 2;
      }
      shard_counts.push_back(s);
    }
    if (shard_counts.empty())
      shard_counts.push_back(std::max(1, static_cast<int>(cli.get_int("shards"))));
  }

  struct Case {
    const char* workload;
    int ranks;
  };
  std::vector<Case> cases =
      smoke ? std::vector<Case>{{"halo3d", 64}, {"hpccg", 64}}
            : std::vector<Case>{{"halo3d", 64},    {"halo3d", 512},
                                {"halo3d", 4096},  {"halo3d", 16384},
                                {"halo3d", 32768}, {"halo3d", 65536},
                                {"hpccg", 64},     {"hpccg", 512},
                                {"allreduce", 64}, {"allreduce", 1024}};
  if (only_ranks > 0) cases = {{"halo3d", only_ranks}};

  std::printf("%-10s %7s %6s %12s %12s %10s %12s %14s %10s %10s %10s\n",
              "workload", "ranks", "shards", "ops", "events/run", "build ms",
              "run ms", "events/sec", "B/op", "ws MiB", "rss MiB");
  std::vector<Measurement> results;
  for (const Case& c : cases) {
    for (const int shards : shard_counts) {
      try {
        results.push_back(
            measure(c.workload, c.ranks, repeats, shards, rss_budget_mib, flow));
      } catch (const std::exception& e) {
        // The engine's upfront working-set estimate rejected the run — the
        // fail-fast path of --rss-budget-mib (no allocation happened).
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
      }
      const Measurement& m = results.back();
      const std::string label = m.workload + (m.flow ? "+flow" : "");
      std::printf(
          "%-10s %7d %6d %12lld %12lld %10.2f %12.2f %14.0f %10.1f %10.1f "
          "%10.1f\n",
          label.c_str(), m.ranks, m.shards, static_cast<long long>(m.ops),
          static_cast<long long>(m.events), m.build_ms_median, m.wall_ms_median,
          m.events_per_sec, m.bytes_per_op,
          static_cast<double>(m.ws_bytes) / (1024.0 * 1024.0),
          static_cast<double>(m.peak_rss) / (1024.0 * 1024.0));
    }
  }

  const bool do_sweep = only_ranks == 0;
  const int cells = smoke ? 2 : sweep_cells;
  double sweep_ms = 0;
  if (do_sweep) {
    sweep_ms = measure_sweep_ms(cells, jobs);
    std::printf("\nrun_sweep: %d cells at --jobs %d: %.2f ms\n", cells, jobs,
                sweep_ms);
  }

  const std::int64_t rss = peak_rss_bytes();
  std::printf("peak RSS: %.1f MiB\n", static_cast<double>(rss) / (1024.0 * 1024.0));

  if (cli.is_set("json-out")) {
    const std::string path = cli.get("json-out");
    std::ofstream out(path);
    if (!out) {
      std::cerr << "error: cannot open " << path << " for writing\n";
      return 1;
    }
    out << json_report(results, jobs, do_sweep ? cells : 0, sweep_ms, rss);
    std::cout << "report written to " << path << "\n";
  }

  if (rss_budget_mib > 0 && rss > rss_budget_mib * 1024 * 1024) {
    std::fprintf(stderr, "error: peak RSS %.1f MiB exceeds budget %lld MiB\n",
                 static_cast<double>(rss) / (1024.0 * 1024.0),
                 static_cast<long long>(rss_budget_mib));
    return 1;
  }
  for (const Measurement& m : results) {
    if (max_ws_mib > 0 && m.ws_bytes > max_ws_mib * 1024 * 1024) {
      std::fprintf(stderr,
                   "error: %s@%d (shards %d) working set %.1f MiB exceeds "
                   "--max-ws-mib %lld\n",
                   m.workload.c_str(), m.ranks, m.shards,
                   static_cast<double>(m.ws_bytes) / (1024.0 * 1024.0),
                   static_cast<long long>(max_ws_mib));
      return 1;
    }
    if (max_shard_heap > 0 && m.shard_heap_peak > max_shard_heap) {
      std::fprintf(stderr,
                   "error: %s@%d (shards %d) shard heap peak %lld exceeds "
                   "--max-shard-heap %lld\n",
                   m.workload.c_str(), m.ranks, m.shards,
                   static_cast<long long>(m.shard_heap_peak),
                   static_cast<long long>(max_shard_heap));
      return 1;
    }
  }
  return 0;
}
