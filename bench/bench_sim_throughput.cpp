// Engine microbenchmarks (google-benchmark): simulator throughput in
// operations per second for representative workloads and scales. Not an
// experiment table — this bounds how far the direct simulation can reach
// and justifies the E12 extrapolation strategy.
#include <benchmark/benchmark.h>

#include "chksim/net/machines.hpp"
#include "chksim/sim/engine.hpp"
#include "chksim/workload/workloads.hpp"

namespace {

using namespace chksim;
using namespace chksim::literals;

void run_workload(benchmark::State& state, const char* name) {
  const int ranks = static_cast<int>(state.range(0));
  workload::StdParams params;
  params.ranks = ranks;
  params.iterations = 10;
  params.compute = 1_ms;
  params.bytes = 8_KiB;
  sim::Program p = workload::make_workload(name, params);
  const sim::ProgramStats st = p.finalize();
  sim::EngineConfig cfg;
  cfg.net = net::infiniband_system().net;
  std::int64_t ops = 0;
  for (auto _ : state) {
    const sim::RunResult r = sim::run_program(p, cfg);
    benchmark::DoNotOptimize(r.makespan);
    ops += r.ops_executed;
  }
  state.SetItemsProcessed(ops);
  state.counters["ops_in_program"] = static_cast<double>(st.ops);
}

void BM_Halo3d(benchmark::State& state) { run_workload(state, "halo3d"); }
void BM_Hpccg(benchmark::State& state) { run_workload(state, "hpccg"); }
void BM_Allreduce(benchmark::State& state) { run_workload(state, "allreduce"); }

BENCHMARK(BM_Halo3d)->Arg(64)->Arg(512)->Arg(4096)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Hpccg)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Allreduce)->Arg(64)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_ProgramBuild(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  workload::StdParams params;
  params.ranks = ranks;
  params.iterations = 10;
  for (auto _ : state) {
    sim::Program p = workload::make_workload("halo3d", params);
    const sim::ProgramStats st = p.finalize();
    benchmark::DoNotOptimize(st.ops);
  }
}
BENCHMARK(BM_ProgramBuild)->Arg(512)->Arg(4096)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
