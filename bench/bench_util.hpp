// Shared helpers for the experiment-regeneration harnesses (bench_e*).
//
// Each bench binary regenerates one reconstructed table/figure (see
// DESIGN.md section 3) and prints it as an aligned ASCII table. Absolute
// numbers depend on the machine presets; the *shapes* are the reproduction
// target recorded in EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "chksim/core/study.hpp"
#include "chksim/obs/critical_path.hpp"
#include "chksim/obs/export.hpp"
#include "chksim/obs/tracer.hpp"
#include "chksim/support/cli.hpp"
#include "chksim/support/parallel.hpp"
#include "chksim/support/table.hpp"

namespace chksim::benchutil {

/// Standard bench command line (--jobs/--smoke/--ranks): declared and
/// documented once in support/cli (chksim::add_standard_flags), so the
/// benches and chksim_run parse identically.
using BenchOptions = chksim::StdOptions;

/// Parse the standard flags; prints usage and exits(2) on bad input. The
/// benches take no positional arguments, and rejecting strays matters: a
/// harness bug that mangles "--jobs 2" into "--jobs 1 2" must fail loudly,
/// not silently run a different configuration.
inline BenchOptions parse_options(int argc, const char* const* argv) {
  Cli cli;
  add_standard_flags(cli);
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]) << "\n";
    std::exit(2);
  }
  if (!cli.positional().empty()) {
    std::cerr << "unexpected argument: " << cli.positional().front() << "\n"
              << cli.usage(argv[0]) << "\n";
    std::exit(2);
  }
  try {
    return standard_options(cli);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    std::exit(2);
  }
}

/// Print the standard experiment banner.
inline void banner(const std::string& id, const std::string& question) {
  std::cout << "==================================================================\n"
            << id << ": " << question << "\n"
            << "==================================================================\n";
}

/// A machine whose per-checkpoint write occupies roughly `duty` of each
/// `interval` at single-writer speed. Benches use this to set a controlled
/// checkpoint pressure independent of the (large) preset checkpoint sizes,
/// so that short simulated runs cover many checkpoint periods.
/// When `uncontended` (the default) the PFS aggregate limit is lifted so
/// write time stays node-bound at any writer count — isolating the
/// perturbation/propagation effect from the I/O-contention effect (which
/// E8 studies separately).
inline net::MachineModel scaled_machine(net::MachineModel m, TimeNs interval,
                                        double duty, bool uncontended = true) {
  const double write_seconds = duty * units::to_seconds(interval);
  m.ckpt_bytes_per_node =
      static_cast<Bytes>(write_seconds * m.node_bw_bytes_per_s);
  if (uncontended) m.pfs_bw_bytes_per_s = m.node_bw_bytes_per_s * 1e7;
  return m;
}

/// Workload parameters sized so a simulation is fast but covers `periods`
/// checkpoint intervals of length `interval` (approximately; based on
/// compute time alone).
inline workload::StdParams sized_params(int ranks, TimeNs interval, int periods,
                                        TimeNs compute_per_iter, Bytes bytes) {
  workload::StdParams p;
  p.ranks = ranks;
  p.compute = compute_per_iter;
  p.bytes = bytes;
  const double iters =
      static_cast<double>(interval) * periods / static_cast<double>(compute_per_iter);
  p.iterations = iters < 2 ? 2 : static_cast<int>(iters);
  return p;
}

inline std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f%%", fraction * 100.0);
  return buf;
}

inline std::string fixed(double v, int digits = 3) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

/// Write the critical-path artifacts for an already-recorded trace: the
/// blame report (JSON) at `path` and a flow-stitched Chrome trace at
/// `path`.trace.json. Narration goes to stderr only, so bench stdout stays
/// byte-identical with and without the flag. Returns the extracted path
/// (possibly invalid — callers wanting κ should check .valid).
inline obs::CriticalPath write_critical_path_outputs(
    const obs::EventTracer& tracer, const std::string& path) {
  const obs::CriticalPath cp = obs::extract_critical_path(tracer);
  std::string error;
  if (!obs::write_critical_path_json_file(cp, path, &error))
    std::cerr << error << "\n";
  else
    std::cerr << "critical path: " << path << "\n";
  if (!obs::write_chrome_trace_file(tracer, path + ".trace.json", &cp, &error))
    std::cerr << error << "\n";
  else
    std::cerr << "critical path trace: " << path + ".trace.json" << "\n";
  if (!cp.valid)
    std::cerr << "warning: critical path invalid: " << cp.error << "\n";
  else
    std::cerr << cp.to_string() << "\n";
  return cp;
}

/// --critical-path-out implementation for benches that drive the engine
/// directly: re-run `program` under `config` with a private tracer and write
/// the artifacts. No-op when `opt.critical_path_out` is empty.
inline void write_engine_critical_path(const BenchOptions& opt,
                                       const sim::Program& program,
                                       sim::EngineConfig config) {
  if (opt.critical_path_out.empty()) return;
  obs::EventTracer tracer(program.ranks());
  config.trace = &tracer;
  sim::run_program(program, config);
  write_critical_path_outputs(tracer, opt.critical_path_out);
}

/// --critical-path-out implementation for study-driven benches: re-run one
/// designated focus cell serially with a private tracer on the perturbed run
/// and write the artifacts (see write_critical_path_outputs). The extra run
/// is deterministic, so the files are byte-identical for every --jobs value.
/// No-op when `opt.critical_path_out` is empty.
inline void write_focus_critical_path(const BenchOptions& opt,
                                      core::StudyConfig config) {
  if (opt.critical_path_out.empty()) return;
  obs::EventTracer tracer(config.params.ranks);
  config.trace = &tracer;
  config.metrics = nullptr;
  config.telemetry = nullptr;
  config.jobs = 1;
  core::run_study(config);
  write_critical_path_outputs(tracer, opt.critical_path_out);
}

}  // namespace chksim::benchutil
