// Shared helpers for the experiment-regeneration harnesses (bench_e*).
//
// Each bench binary regenerates one reconstructed table/figure (see
// DESIGN.md section 3) and prints it as an aligned ASCII table. Absolute
// numbers depend on the machine presets; the *shapes* are the reproduction
// target recorded in EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "chksim/core/study.hpp"
#include "chksim/support/cli.hpp"
#include "chksim/support/parallel.hpp"
#include "chksim/support/table.hpp"

namespace chksim::benchutil {

/// Standard bench command line (--jobs/--smoke/--ranks): declared and
/// documented once in support/cli (chksim::add_standard_flags), so the
/// benches and chksim_run parse identically.
using BenchOptions = chksim::StdOptions;

/// Parse the standard flags; prints usage and exits(2) on bad input.
inline BenchOptions parse_options(int argc, const char* const* argv) {
  Cli cli;
  add_standard_flags(cli);
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]) << "\n";
    std::exit(2);
  }
  try {
    return standard_options(cli);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    std::exit(2);
  }
}

/// Print the standard experiment banner.
inline void banner(const std::string& id, const std::string& question) {
  std::cout << "==================================================================\n"
            << id << ": " << question << "\n"
            << "==================================================================\n";
}

/// A machine whose per-checkpoint write occupies roughly `duty` of each
/// `interval` at single-writer speed. Benches use this to set a controlled
/// checkpoint pressure independent of the (large) preset checkpoint sizes,
/// so that short simulated runs cover many checkpoint periods.
/// When `uncontended` (the default) the PFS aggregate limit is lifted so
/// write time stays node-bound at any writer count — isolating the
/// perturbation/propagation effect from the I/O-contention effect (which
/// E8 studies separately).
inline net::MachineModel scaled_machine(net::MachineModel m, TimeNs interval,
                                        double duty, bool uncontended = true) {
  const double write_seconds = duty * units::to_seconds(interval);
  m.ckpt_bytes_per_node =
      static_cast<Bytes>(write_seconds * m.node_bw_bytes_per_s);
  if (uncontended) m.pfs_bw_bytes_per_s = m.node_bw_bytes_per_s * 1e7;
  return m;
}

/// Workload parameters sized so a simulation is fast but covers `periods`
/// checkpoint intervals of length `interval` (approximately; based on
/// compute time alone).
inline workload::StdParams sized_params(int ranks, TimeNs interval, int periods,
                                        TimeNs compute_per_iter, Bytes bytes) {
  workload::StdParams p;
  p.ranks = ranks;
  p.compute = compute_per_iter;
  p.bytes = bytes;
  const double iters =
      static_cast<double>(interval) * periods / static_cast<double>(compute_per_iter);
  p.iterations = iters < 2 ? 2 : static_cast<int>(iters);
  return p;
}

inline std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f%%", fraction * 100.0);
  return buf;
}

inline std::string fixed(double v, int digits = 3) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

}  // namespace chksim::benchutil
