// E10 — Crossover analysis: at what logging tax does uncoordinated
// checkpointing lose to coordinated?
//
// At 1024 ranks, measure the failure-free slowdown of both protocols (same
// duty cycle) while sweeping the uncoordinated per-message logging tax,
// then fold in the failure model (coordinated pays rollback; uncoordinated
// pays replay). Expected shape: at tax ~0 uncoordinated ties or wins via
// cheaper recovery; the communication-intensive workload crosses over at a
// tax of a few microseconds per message, the loosely coupled one much
// later — whether avoiding coordination pays is a property of the
// APPLICATION'S COMMUNICATION, not of the protocol.
#include "bench_util.hpp"

#include "chksim/core/failure_study.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;
  const benchutil::BenchOptions opt = benchutil::parse_options(argc, argv);
  benchutil::banner("E10", "uncoordinated-vs-coordinated crossover in logging tax");

  const TimeNs interval = 10_ms;
  const int ranks = 1024;
  const std::vector<const char*> workloads = {"halo3d", "ep"};
  const std::vector<double> duties = {0.08, 0.01};
  const std::vector<TimeNs> taxes = {0_us, 1_us, 2_us, 5_us, 10_us, 20_us, 50_us};

  // Per (workload, duty) group: the coordinated baseline followed by one
  // uncoordinated cell per tax; groups are laid out back to back.
  const std::size_t group = 1 + taxes.size();
  std::vector<core::FailureStudyConfig> cells;
  for (const char* wl : workloads) {
    for (const double duty : duties) {
      core::FailureStudyConfig base;
      base.study.machine =
          benchutil::scaled_machine(net::infiniband_system(), interval, duty);
      base.study.machine.node_mtbf_hours = 500;
      base.study.workload = wl;
      base.study.params = benchutil::sized_params(ranks, interval, 4, 1_ms, 8_KiB);
      base.study.protocol.kind = ckpt::ProtocolKind::kCoordinated;
      base.study.protocol.fixed_interval = interval;
      base.work_seconds = 24 * 3600;
      base.trials = 200;
      base.recovery_interval_seconds = 300;
      base.seed = 11;
      cells.push_back(base);
      for (TimeNs tax : taxes) {
        core::FailureStudyConfig ucfg = base;
        ucfg.study.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
        ucfg.study.protocol.log_per_message = tax;
        cells.push_back(ucfg);
      }
    }
  }
  const std::vector<core::FailureStudyResult> results =
      core::run_failure_sweep(cells, opt.jobs);

  Table t({"workload", "duty", "tax/msg", "eff(coordinated)", "eff(uncoordinated)",
           "winner"});
  std::size_t g = 0;
  for (const char* wl : workloads) {
    for (const double duty : duties) {
      const core::FailureStudyResult& co = results[g * group];
      for (std::size_t x = 0; x < taxes.size(); ++x) {
        const core::FailureStudyResult& un = results[g * group + 1 + x];
        t.row() << wl << benchutil::pct(duty) << units::format_time(taxes[x])
                << benchutil::fixed(co.makespan.efficiency, 4)
                << benchutil::fixed(un.makespan.efficiency, 4)
                << (un.makespan.efficiency >= co.makespan.efficiency
                        ? "uncoordinated"
                        : "coordinated");
      }
      ++g;
    }
  }
  std::cout << t.to_ascii();

  // Focus cell for --critical-path-out: the first uncoordinated cell
  // (halo3d, tax 0) — where the logged-message path starts from.
  benchutil::write_focus_critical_path(opt, cells[1].study);
  return 0;
}
