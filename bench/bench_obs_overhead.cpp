// Observability overhead microbenchmarks (google-benchmark).
//
// The contract of EngineConfig::trace is "zero cost when null, cheap when
// on". This bench quantifies both halves against bench_sim_throughput's
// halo3d workload:
//   * TracingOff       — trace == nullptr; must match the seed engine
//                        throughput (the ISSUE budget is <= 2% regression);
//   * TracingUnbounded — full-fidelity EventTracer (grows without bound);
//   * TracingRing4k    — bounded flight-recorder ring (4096 events/rank),
//                        the fixed-memory configuration for long runs;
//   * Attribution      — the post-run wait-state attribution pass alone;
//   * CriticalPath     — the post-run backward critical-path walk alone.
// Results are recorded in BENCH_obs.json at the repo root.
#include <benchmark/benchmark.h>

#include "chksim/net/machines.hpp"
#include "chksim/noise/noise.hpp"
#include "chksim/obs/attribution.hpp"
#include "chksim/obs/critical_path.hpp"
#include "chksim/obs/tracer.hpp"
#include "chksim/workload/workloads.hpp"

namespace {

using namespace chksim;
using namespace chksim::literals;

sim::Program make_program(int ranks) {
  workload::StdParams params;
  params.ranks = ranks;
  params.iterations = 10;
  params.compute = 1_ms;
  params.bytes = 8_KiB;
  sim::Program p = workload::make_workload("halo3d", params);
  p.finalize();
  return p;
}

void run_bench(benchmark::State& state, std::size_t ring_capacity, bool tracing) {
  const int ranks = static_cast<int>(state.range(0));
  const sim::Program p = make_program(ranks);
  sim::EngineConfig cfg;
  cfg.net = net::infiniband_system().net;
  std::int64_t ops = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    obs::EventTracer tracer(ranks, ring_capacity);
    cfg.trace = tracing ? &tracer : nullptr;
    const sim::RunResult r = sim::run_program(p, cfg);
    benchmark::DoNotOptimize(r.makespan);
    ops += r.ops_executed;
    events += tracer.recorded();
  }
  state.SetItemsProcessed(ops);
  state.counters["trace_events"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kAvgIterations);
}

void BM_TracingOff(benchmark::State& state) { run_bench(state, 0, false); }
void BM_TracingUnbounded(benchmark::State& state) { run_bench(state, 0, true); }
void BM_TracingRing4k(benchmark::State& state) { run_bench(state, 4096, true); }

BENCHMARK(BM_TracingOff)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TracingUnbounded)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TracingRing4k)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_Attribution(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const sim::Program p = make_program(ranks);
  sim::EngineConfig cfg;
  cfg.net = net::infiniband_system().net;
  obs::EventTracer probe(ranks);
  cfg.trace = &probe;
  const sim::RunResult r0 = sim::run_program(p, cfg);
  const auto noise = noise::make_single_blackout(
      ranks, ranks / 2, {r0.makespan / 3, r0.makespan / 3 + 1_ms});
  probe.clear();
  cfg.blackouts = noise.get();
  (void)sim::run_program(p, cfg);
  for (auto _ : state) {
    const obs::WaitAttribution att = obs::attribute_waits(probe);
    benchmark::DoNotOptimize(att.total.recv_wait);
  }
  state.counters["trace_events"] = static_cast<double>(probe.recorded());
}
BENCHMARK(BM_Attribution)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_CriticalPath(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const sim::Program p = make_program(ranks);
  sim::EngineConfig cfg;
  cfg.net = net::infiniband_system().net;
  obs::EventTracer probe(ranks);
  cfg.trace = &probe;
  const sim::RunResult r0 = sim::run_program(p, cfg);
  const auto noise = noise::make_single_blackout(
      ranks, ranks / 2, {r0.makespan / 3, r0.makespan / 3 + 1_ms});
  probe.clear();
  cfg.blackouts = noise.get();
  (void)sim::run_program(p, cfg);
  for (auto _ : state) {
    const obs::CriticalPath cp = obs::extract_critical_path(probe);
    benchmark::DoNotOptimize(cp.makespan);
  }
  state.counters["trace_events"] = static_cast<double>(probe.recorded());
}
BENCHMARK(BM_CriticalPath)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
