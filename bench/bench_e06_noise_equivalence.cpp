// E6 — Checkpointing as noise: equal-budget perturbations at different
// (frequency, amplitude) points.
//
// All rows inject the same 2% per-rank unavailability, from fine-grained
// OS-noise-like (1 kHz, 20 us) to checkpoint-like (1 Hz-ish, 20 ms), both
// with aligned (co-scheduled / coordinated) and random (uncoordinated)
// phases. Expected shape: aligned noise costs ~its budget regardless of
// granularity; unaligned noise is increasingly amplified as amplitude grows
// (absorption fails once a detour exceeds per-iteration slack) — which is
// exactly why uncoordinated checkpointing (huge-amplitude unaligned noise)
// propagates so badly in coupled applications.
#include "bench_util.hpp"

#include "chksim/noise/noise.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;
  const benchutil::BenchOptions opt = benchutil::parse_options(argc, argv);
  benchutil::banner("E6", "equal-budget noise: frequency/amplitude tradeoff");

  const net::MachineModel machine = net::infiniband_system();
  const int ranks = 256;

  struct Point {
    TimeNs period;
    TimeNs duration;
  };
  const std::vector<const char*> workloads = {"halo3d", "hpccg"};
  const std::vector<Point> points = {Point{1_ms, 20_us}, Point{10_ms, 200_us},
                                     Point{60_ms, 1200_us}, Point{300_ms, 6_ms}};

  std::vector<sim::Program> programs;
  for (const char* wl : workloads) {
    workload::StdParams params;
    params.ranks = ranks;
    params.iterations = 60;
    params.compute = 1_ms;
    params.bytes = 8_KiB;
    programs.push_back(workload::make_workload(wl, params));
    programs.back().finalize();
  }
  sim::EngineConfig base;
  base.net = machine.net;

  // Every (workload, point, aligned) cell measures independently against the
  // shared read-only program; slot = ((wl * points) + point) * 2 + aligned?0:1.
  std::vector<noise::AmplificationReport> reps(workloads.size() * points.size() * 2);
  par::for_each_index(
      static_cast<std::int64_t>(reps.size()), opt.jobs, [&](std::int64_t slot) {
        const std::size_t cell = static_cast<std::size_t>(slot) / 2;
        const std::size_t wl = cell / points.size();
        const Point pt = points[cell % points.size()];
        noise::PeriodicNoiseConfig ncfg;
        ncfg.period = pt.period;
        ncfg.duration = pt.duration;
        ncfg.aligned = static_cast<std::size_t>(slot) % 2 == 0;
        ncfg.seed = 17;
        const auto sched = noise::make_periodic_noise(ranks, ncfg);
        reps[static_cast<std::size_t>(slot)] = noise::measure_amplification(
            programs[wl], base, *sched, noise::injected_fraction(ncfg));
      });

  Table t({"workload", "period", "duration", "aligned", "slowdown", "amplification"});
  for (std::size_t wl = 0; wl < workloads.size(); ++wl) {
    for (std::size_t p = 0; p < points.size(); ++p) {
      for (const bool aligned : {true, false}) {
        const auto& rep = reps[(wl * points.size() + p) * 2 + (aligned ? 0 : 1)];
        t.row() << workloads[wl] << units::format_time(points[p].period)
                << units::format_time(points[p].duration) << (aligned ? "yes" : "no")
                << benchutil::fixed(rep.slowdown)
                << benchutil::fixed(rep.amplification, 2);
      }
    }
  }
  std::cout << t.to_ascii();

  if (!opt.critical_path_out.empty()) {
    // Focus cell: halo3d under the coarsest UNaligned noise point — the
    // checkpoint-like perturbation whose amplification the table ends on.
    noise::PeriodicNoiseConfig ncfg;
    ncfg.period = points.back().period;
    ncfg.duration = points.back().duration;
    ncfg.aligned = false;
    ncfg.seed = 17;
    const auto sched = noise::make_periodic_noise(ranks, ncfg);
    sim::EngineConfig cfg = base;
    cfg.blackouts = sched.get();
    benchutil::write_engine_critical_path(opt, programs[0], cfg);
  }
  return 0;
}
