// E6 — Checkpointing as noise: equal-budget perturbations at different
// (frequency, amplitude) points.
//
// All rows inject the same 2% per-rank unavailability, from fine-grained
// OS-noise-like (1 kHz, 20 us) to checkpoint-like (1 Hz-ish, 20 ms), both
// with aligned (co-scheduled / coordinated) and random (uncoordinated)
// phases. Expected shape: aligned noise costs ~its budget regardless of
// granularity; unaligned noise is increasingly amplified as amplitude grows
// (absorption fails once a detour exceeds per-iteration slack) — which is
// exactly why uncoordinated checkpointing (huge-amplitude unaligned noise)
// propagates so badly in coupled applications.
#include "bench_util.hpp"

#include "chksim/noise/noise.hpp"

int main() {
  using namespace chksim;
  using namespace chksim::literals;
  benchutil::banner("E6", "equal-budget noise: frequency/amplitude tradeoff");

  const net::MachineModel machine = net::infiniband_system();
  const int ranks = 256;

  Table t({"workload", "period", "duration", "aligned", "slowdown", "amplification"});
  for (const char* wl : {"halo3d", "hpccg"}) {
    workload::StdParams params;
    params.ranks = ranks;
    params.iterations = 60;
    params.compute = 1_ms;
    params.bytes = 8_KiB;
    sim::Program program = workload::make_workload(wl, params);
    program.finalize();

    sim::EngineConfig base;
    base.net = machine.net;

    struct Point {
      TimeNs period;
      TimeNs duration;
    };
    for (const Point pt : {Point{1_ms, 20_us}, Point{10_ms, 200_us},
                           Point{60_ms, 1200_us}, Point{300_ms, 6_ms}}) {
      for (const bool aligned : {true, false}) {
        noise::PeriodicNoiseConfig ncfg;
        ncfg.period = pt.period;
        ncfg.duration = pt.duration;
        ncfg.aligned = aligned;
        ncfg.seed = 17;
        const auto sched = noise::make_periodic_noise(ranks, ncfg);
        const auto rep = noise::measure_amplification(program, base, *sched,
                                                      noise::injected_fraction(ncfg));
        t.row() << wl << units::format_time(pt.period)
                << units::format_time(pt.duration) << (aligned ? "yes" : "no")
                << benchutil::fixed(rep.slowdown) << benchutil::fixed(rep.amplification, 2);
      }
    }
  }
  std::cout << t.to_ascii();
  return 0;
}
