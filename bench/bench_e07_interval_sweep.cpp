// E7 — Checkpoint-interval sweep: simulation vs Young/Daly analytics.
//
// At 4096 nodes on the InfiniBand machine, sweep the coordinated checkpoint
// interval around Daly's optimum and compare the Monte-Carlo expected
// makespan against Daly's closed-form prediction, for three node-MTBF
// settings. Expected shape: a U-curve with the simulated minimum within a
// few percent of tau_Daly, and the closed form tracking the simulation.
#include "bench_util.hpp"

#include "chksim/analytic/daly.hpp"
#include "chksim/ckpt/recovery.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;
  const benchutil::BenchOptions opt = benchutil::parse_options(argc, argv);
  benchutil::banner("E7", "interval sweep: simulated vs Daly analytic");

  const int ranks = 4096;
  const double work = 7.0 * 24 * 3600;  // one week of useful work

  Table t({"node_mtbf(h)", "tau/tau_daly", "tau(s)", "sim_makespan(h)",
           "daly_makespan(h)", "sim_efficiency"});
  for (const double node_mtbf_hours : {10'000.0, 25'000.0, 50'000.0}) {
    net::MachineModel machine = net::infiniband_system();
    machine.node_mtbf_hours = node_mtbf_hours;
    const double M = machine.system_mtbf_seconds(ranks);
    const storage::Pfs pfs = ckpt::pfs_of(machine);
    const double delta =
        units::to_seconds(pfs.concurrent_write(machine.ckpt_bytes_per_node, ranks).per_node);
    const double R = machine.restart_seconds;
    const double tau_daly = analytic::daly_interval(delta, M);

    for (const double mult : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      const double tau = tau_daly * mult;
      if (tau <= delta) continue;  // no forward progress
      ckpt::RecoveryParams rp;
      rp.kind = ckpt::ProtocolKind::kCoordinated;
      rp.work_seconds = work;
      rp.slowdown = 1.0 + delta / tau;  // first-order: write cost per interval
      rp.interval_seconds = tau;
      rp.restart_seconds = R;
      fault::Exponential dist(M);
      const ckpt::MakespanResult mk = ckpt::simulate_makespan(
          rp, dist, 300, 2024, /*metrics=*/nullptr, opt.jobs);
      const double daly = analytic::daly_walltime(work, tau, delta, R, M);
      t.row() << benchutil::fixed(node_mtbf_hours, 0) << benchutil::fixed(mult, 3)
              << benchutil::fixed(tau, 0) << benchutil::fixed(mk.mean_seconds / 3600, 1)
              << benchutil::fixed(daly / 3600, 1)
              << benchutil::fixed(mk.efficiency, 3);
    }
  }
  std::cout << t.to_ascii();
  std::cout << "\n(tau/tau_daly = 1 rows should sit at or near each column minimum.)\n";

  if (!opt.critical_path_out.empty())
    std::cerr << "E7 is analytic + Monte-Carlo only — no engine run to trace; "
                 "--critical-path-out ignored.\n";
  return 0;
}
