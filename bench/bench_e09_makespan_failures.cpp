// E9 — End-to-end expected makespan with failures.
//
// Full pipeline at engine-feasible scales: simulate the perturbation
// (blackouts + logging tax) on the real workload DAG, then Monte-Carlo the
// failure/recovery process. Coordinated vs uncoordinated (with a realistic
// 1 us/message logging tax) vs hierarchical (c=16), under exponential and
// Weibull(0.7) failures. Expected shape: at these scales and MTBFs the
// protocols are close, with uncoordinated's advantage (no global rollback,
// spread I/O) competing against its logging tax and unaligned-blackout
// propagation — the paper's core tradeoff, quantified.
#include "bench_util.hpp"

#include "chksim/core/failure_study.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;
  const benchutil::BenchOptions opt = benchutil::parse_options(argc, argv);
  benchutil::banner("E9", "expected makespan with failures, by protocol");

  const TimeNs interval = 10_ms;
  const double duty = 0.08;

  const std::vector<const char*> workloads =
      opt.smoke ? std::vector<const char*>{"halo3d"}
                : std::vector<const char*>{"halo3d", "hpccg"};
  const std::vector<int> scales =
      opt.smoke ? std::vector<int>{256} : std::vector<int>{256, 1024};

  std::vector<core::FailureStudyConfig> cells;
  std::vector<double> shapes;  // parallel to cells, for the table
  for (const char* wl : workloads) {
    for (int ranks : scales) {
      for (int proto = 0; proto < 3; ++proto) {
        for (const double shape : {0.0, 0.7}) {
          core::FailureStudyConfig cfg;
          cfg.study.machine =
              benchutil::scaled_machine(net::infiniband_system(), interval, duty);
          // Stress reliability so failures matter over a day of work:
          // 500 h node MTBF at 1024 nodes -> ~29 min system MTBF.
          cfg.study.machine.node_mtbf_hours = 500;
          cfg.study.workload = wl;
          cfg.study.params = benchutil::sized_params(ranks, interval, 4, 1_ms, 8_KiB);
          switch (proto) {
            case 0:
              cfg.study.protocol.kind = ckpt::ProtocolKind::kCoordinated;
              break;
            case 1:
              cfg.study.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
              cfg.study.protocol.log_per_message = 1_us;
              break;
            case 2:
              cfg.study.protocol.kind = ckpt::ProtocolKind::kHierarchical;
              cfg.study.protocol.cluster_size = 16;
              cfg.study.protocol.log_per_message = 1_us;
              break;
          }
          // The *simulated* run uses a scaled-down interval; the recovery
          // model uses a realistic one (same duty cycle, 300 s period).
          cfg.study.protocol.fixed_interval = interval;
          cfg.recovery_interval_seconds = 300;
          cfg.work_seconds = 24 * 3600;
          cfg.trials = 200;
          cfg.weibull_shape = shape;
          cfg.seed = 7;
          cells.push_back(cfg);
          shapes.push_back(shape);
        }
      }
    }
  }
  const std::vector<core::FailureStudyResult> results =
      core::run_failure_sweep(cells, opt.jobs);

  Table t({"workload", "ranks", "protocol", "failure_dist", "slowdown(no-fail)",
           "mean_failures", "makespan(h)", "efficiency"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::FailureStudyResult& r = results[i];
    t.row() << r.breakdown.workload << std::int64_t{r.breakdown.ranks}
            << r.breakdown.protocol
            << (shapes[i] == 0.0 ? "exponential" : "weibull(0.7)")
            << benchutil::fixed(r.breakdown.slowdown)
            << benchutil::fixed(r.makespan.mean_failures, 1)
            << benchutil::fixed(r.makespan.mean_seconds / 3600, 2)
            << benchutil::fixed(r.makespan.efficiency, 3);
  }
  std::cout << t.to_ascii();

  // Focus cell for --critical-path-out: the failure-free perturbation run of
  // the first cell (coordinated halo3d, exponential failures).
  benchutil::write_focus_critical_path(opt, cells.front().study);
  return 0;
}
