// E9 — End-to-end expected makespan with failures.
//
// Full pipeline at engine-feasible scales: simulate the perturbation
// (blackouts + logging tax) on the real workload DAG, then Monte-Carlo the
// failure/recovery process. Coordinated vs uncoordinated (with a realistic
// 1 us/message logging tax) vs hierarchical (c=16), under exponential and
// Weibull(0.7) failures. Expected shape: at these scales and MTBFs the
// protocols are close, with uncoordinated's advantage (no global rollback,
// spread I/O) competing against its logging tax and unaligned-blackout
// propagation — the paper's core tradeoff, quantified.
#include "bench_util.hpp"

#include "chksim/core/failure_study.hpp"

int main() {
  using namespace chksim;
  using namespace chksim::literals;
  benchutil::banner("E9", "expected makespan with failures, by protocol");

  const TimeNs interval = 10_ms;
  const double duty = 0.08;

  Table t({"workload", "ranks", "protocol", "failure_dist", "slowdown(no-fail)",
           "mean_failures", "makespan(h)", "efficiency"});
  for (const char* wl : {"halo3d", "hpccg"}) {
    for (int ranks : {256, 1024}) {
      for (int proto = 0; proto < 3; ++proto) {
        for (const double shape : {0.0, 0.7}) {
          core::FailureStudyConfig cfg;
          cfg.study.machine =
              benchutil::scaled_machine(net::infiniband_system(), interval, duty);
          // Stress reliability so failures matter over a day of work:
          // 500 h node MTBF at 1024 nodes -> ~29 min system MTBF.
          cfg.study.machine.node_mtbf_hours = 500;
          cfg.study.workload = wl;
          cfg.study.params = benchutil::sized_params(ranks, interval, 4, 1_ms, 8_KiB);
          switch (proto) {
            case 0:
              cfg.study.protocol.kind = ckpt::ProtocolKind::kCoordinated;
              break;
            case 1:
              cfg.study.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
              cfg.study.protocol.log_per_message = 1_us;
              break;
            case 2:
              cfg.study.protocol.kind = ckpt::ProtocolKind::kHierarchical;
              cfg.study.protocol.cluster_size = 16;
              cfg.study.protocol.log_per_message = 1_us;
              break;
          }
          // The *simulated* run uses a scaled-down interval; the recovery
          // model uses a realistic one (same duty cycle, 300 s period).
          cfg.study.protocol.fixed_interval = interval;
          cfg.recovery_interval_seconds = 300;
          cfg.work_seconds = 24 * 3600;
          cfg.trials = 200;
          cfg.weibull_shape = shape;
          cfg.seed = 7;
          const core::FailureStudyResult r = core::run_failure_study(cfg);
          t.row() << wl << std::int64_t{ranks} << r.breakdown.protocol
                  << (shape == 0.0 ? "exponential" : "weibull(0.7)")
                  << benchutil::fixed(r.breakdown.slowdown)
                  << benchutil::fixed(r.makespan.mean_failures, 1)
                  << benchutil::fixed(r.makespan.mean_seconds / 3600, 2)
                  << benchutil::fixed(r.makespan.efficiency, 3);
        }
      }
    }
  }
  std::cout << t.to_ascii();
  return 0;
}
