// E2 — Application slowdown from COORDINATED checkpointing versus scale.
//
// For four communication skeletons and scales 64..4096 ranks, inject an
// aligned checkpoint schedule at a controlled 10% write duty cycle and
// measure the end-to-end slowdown and the propagation factor
// (overhead / duty). Expected shape: slowdown tracks the duty cycle with a
// propagation factor near 1 for bulk-synchronous codes (aligned blackouts
// hit every rank at once, so little extra is lost), and stays modest even
// for tightly coupled codes — the coordinated protocol's cost is the WRITE,
// not the coordination or the propagation.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;
  const benchutil::BenchOptions opt = benchutil::parse_options(argc, argv);
  benchutil::banner("E2", "coordinated checkpointing overhead vs scale");

  const TimeNs interval = 10_ms;  // scaled-down period so short runs see many
  const double duty = 0.10;

  const std::vector<const char*> workloads =
      opt.smoke ? std::vector<const char*>{"halo3d"}
                : std::vector<const char*>{"halo3d", "hpccg", "sweep2d", "ep"};
  const std::vector<int> scales =
      opt.smoke ? std::vector<int>{64, 256} : std::vector<int>{64, 256, 1024, 4096};

  std::vector<core::StudyConfig> cells;
  for (const char* wl : workloads) {
    for (int ranks : scales) {
      core::StudyConfig cfg;
      cfg.machine = benchutil::scaled_machine(net::infiniband_system(), interval, duty);
      cfg.workload = wl;
      cfg.params = benchutil::sized_params(ranks, interval, 4, 1_ms, 8_KiB);
      cfg.protocol.kind = ckpt::ProtocolKind::kCoordinated;
      cfg.protocol.fixed_interval = interval;
      cfg.protocol.skew_sigma_ns = 0;
      cells.push_back(cfg);
    }
  }
  const std::vector<core::Breakdown> results = core::run_sweep(cells, opt.jobs);

  Table t({"workload", "ranks", "interval", "blackout", "coord_part", "duty",
           "slowdown", "overhead", "propagation"});
  for (const core::Breakdown& b : results) {
    t.row() << b.workload << std::int64_t{b.ranks} << units::format_time(b.interval)
            << units::format_time(b.blackout)
            << units::format_time(b.coordination_time) << benchutil::pct(b.duty_cycle)
            << benchutil::fixed(b.slowdown) << benchutil::pct(b.overhead_fraction)
            << benchutil::fixed(b.propagation_factor, 2);
  }
  std::cout << t.to_ascii();

  // Focus cell for --critical-path-out: the smallest coordinated halo3d run.
  benchutil::write_focus_critical_path(opt, cells.front());
  return 0;
}
