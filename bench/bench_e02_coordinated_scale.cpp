// E2 — Application slowdown from COORDINATED checkpointing versus scale.
//
// For four communication skeletons and scales 64..4096 ranks, inject an
// aligned checkpoint schedule at a controlled 10% write duty cycle and
// measure the end-to-end slowdown and the propagation factor
// (overhead / duty). Expected shape: slowdown tracks the duty cycle with a
// propagation factor near 1 for bulk-synchronous codes (aligned blackouts
// hit every rank at once, so little extra is lost), and stays modest even
// for tightly coupled codes — the coordinated protocol's cost is the WRITE,
// not the coordination or the propagation.
#include "bench_util.hpp"

int main() {
  using namespace chksim;
  using namespace chksim::literals;
  benchutil::banner("E2", "coordinated checkpointing overhead vs scale");

  const TimeNs interval = 10_ms;  // scaled-down period so short runs see many
  const double duty = 0.10;

  Table t({"workload", "ranks", "interval", "blackout", "coord_part", "duty",
           "slowdown", "overhead", "propagation"});
  for (const char* wl : {"halo3d", "hpccg", "sweep2d", "ep"}) {
    for (int ranks : {64, 256, 1024, 4096}) {
      core::StudyConfig cfg;
      cfg.machine = benchutil::scaled_machine(net::infiniband_system(), interval, duty);
      cfg.workload = wl;
      cfg.params = benchutil::sized_params(ranks, interval, 4, 1_ms, 8_KiB);
      cfg.protocol.kind = ckpt::ProtocolKind::kCoordinated;
      cfg.protocol.fixed_interval = interval;
      cfg.protocol.skew_sigma_ns = 0;
      const core::Breakdown b = core::run_study(cfg);
      t.row() << wl << std::int64_t{ranks} << units::format_time(b.interval)
              << units::format_time(b.blackout)
              << units::format_time(b.coordination_time) << benchutil::pct(b.duty_cycle)
              << benchutil::fixed(b.slowdown) << benchutil::pct(b.overhead_fraction)
              << benchutil::fixed(b.propagation_factor, 2);
    }
  }
  std::cout << t.to_ascii();
  return 0;
}
