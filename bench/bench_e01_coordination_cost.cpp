// E1 — The cost of coordination alone, versus scale.
//
// Closed-form LogP costs of the two classic synchronisation algorithms plus
// the expected arrival-skew wait, from 2^4 to 2^22 ranks; for small scales
// the closed form is validated against a full engine simulation of the
// dissemination barrier.
//
// Expected shape: logarithmic growth; even at 4M ranks coordination is
// microseconds — orders of magnitude below checkpoint write times, i.e.
// coordination is NOT where coordinated checkpointing hurts.
#include "bench_util.hpp"

#include "chksim/analytic/coordination.hpp"
#include "chksim/ckpt/protocols.hpp"
#include "chksim/coll/collectives.hpp"
#include "chksim/sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;
  const benchutil::BenchOptions opt = benchutil::parse_options(argc, argv);
  benchutil::banner("E1", "what does global coordination cost at scale?");

  const net::MachineModel machine = net::infiniband_system();
  const sim::LogGOPSParams& net = machine.net;

  // The engine-simulated validation barriers (ranks <= 1024) are the only
  // expensive rows; run them as a parallel batch, one result slot per scale.
  std::vector<int> sim_scales;
  for (int exp = 4; exp <= 22; exp += 2)
    if ((1 << exp) <= 1024) sim_scales.push_back(1 << exp);
  std::vector<std::string> simulated(sim_scales.size());
  par::for_each_index(static_cast<std::int64_t>(sim_scales.size()), opt.jobs,
                      [&](std::int64_t i) {
                        const int ranks = sim_scales[static_cast<std::size_t>(i)];
                        sim::Program p(ranks);
                        coll::barrier_dissemination(p, coll::full_group(ranks));
                        p.finalize();
                        sim::EngineConfig cfg;
                        cfg.net = net;
                        const sim::RunResult r = sim::run_program(p, cfg);
                        simulated[static_cast<std::size_t>(i)] =
                            units::format_time(r.makespan);
                      });

  Table t({"ranks", "dissemination", "tree", "skew(sigma=10us)", "total(dissem+skew)",
           "simulated_barrier"});
  std::size_t sim_row = 0;
  for (int exp = 4; exp <= 22; exp += 2) {
    const int ranks = 1 << exp;
    const TimeNs dis = analytic::barrier_dissemination_cost(net, ranks);
    const TimeNs tree = analytic::barrier_tree_cost(net, ranks);
    const double skew = analytic::expected_max_of_normals(ranks, 10'000.0);
    const TimeNs total = analytic::coordination_cost(
        net, ranks, analytic::SyncAlgorithm::kDissemination, 10'000.0);

    t.row() << std::int64_t{ranks} << units::format_time(dis)
            << units::format_time(tree)
            << units::format_time(static_cast<TimeNs>(skew))
            << units::format_time(total)
            << (ranks <= 1024 ? simulated[sim_row++] : std::string("-"));
  }
  std::cout << t.to_ascii() << "\n";

  std::cout << "Context: one coordinated checkpoint WRITE on this machine at 2^14\n"
               "ranks costs "
            << units::format_time(
                   ckpt::pfs_of(machine)
                       .concurrent_write(machine.ckpt_bytes_per_node, 1 << 14)
                       .per_node)
            << " — coordination is negligible by comparison.\n";

  if (!opt.critical_path_out.empty() && !sim_scales.empty()) {
    // Focus cell: the largest engine-simulated dissemination barrier.
    const int ranks = sim_scales.back();
    sim::Program p(ranks);
    coll::barrier_dissemination(p, coll::full_group(ranks));
    p.finalize();
    sim::EngineConfig cfg;
    cfg.net = net;
    benchutil::write_engine_critical_path(opt, p, cfg);
  }
  return 0;
}
