// E15 — in-fabric contention: how the protocol rankings move when
// checkpoint and message traffic share the network.
//
// E8 asked what checkpoint writes cost under a shared-PFS pipe, E11 where
// hierarchical clustering's sweet spot sits, and E12 which protocol carries
// furthest — all with the network as an infinite crossbar (analytic LogGOPS
// transit). Flow mode (core::NetworkMode::kFlow) routes every message and
// checkpoint transfer over explicit fabric links with max-min fair sharing,
// so those questions get re-asked with the contention the paper says
// matters:
//
//   1. protocol crossover vs scale — coordinated bursts, uncoordinated +
//      logging tax, hierarchical clusters, each analytic vs flow. The PFS
//      and its gateway fan-in saturate as ranks grow, so the scale at which
//      spreading (uncoordinated/hierarchical) overtakes the coordinated
//      burst moves between the two network models;
//   2. burst-buffer drain vs halo traffic — the analytic model books a BB
//      checkpoint as a fixed fast blackout and the drain to the PFS is
//      free; in flow mode the drain crosses the same links as the halo
//      exchange;
//   3. logging traffic vs collectives — the uncoordinated logging tax
//      delays sends; under a contended fabric those delayed collectives
//      (hpccg's allreduces) pay again in the network;
//   4. topology-aware staggering — hierarchical clusters are contiguous
//      rank blocks, i.e. contiguous fabric placement, and each cluster gets
//      its own checkpoint phase: cluster size IS stagger-by-placement. The
//      sweep shows how much placement-block staggering is worth once the
//      fabric, not just the PFS, carries the bursts.
//
// Expected shape: at small scale flow mode tracks analytic (nothing
// saturates); as the offered checkpoint load crosses the PFS/gateway
// capacity the coordinated burst pays the most, and the
// uncoordinated/hierarchical crossover arrives one scale step earlier in
// flow mode than in analytic mode.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace chksim;
  using namespace chksim::literals;
  const benchutil::BenchOptions opt = benchutil::parse_options(argc, argv);
  benchutil::banner("E15",
                    "protocol crossovers under in-fabric contention (flow mode)");

  const TimeNs interval = 10_ms;
  const double duty = 0.08;
  // Keep the real PFS limit (uncontended=false): the aggregate I/O wall is
  // part of the question. In smoke mode shrink the PFS so even the small
  // smoke scales push past it and the gates exercise a contended solver.
  net::MachineModel machine = benchutil::scaled_machine(
      net::infiniband_system(), interval, duty, /*uncontended=*/false);
  if (opt.smoke) machine.pfs_bw_bytes_per_s = 24e9;

  const std::vector<int> scales =
      opt.smoke ? std::vector<int>{27, 64, 125} : std::vector<int>{64, 216, 512};

  const auto base_config = [&](int ranks, const char* workload) {
    core::StudyConfig cfg;
    cfg.machine = machine;
    cfg.workload = workload;
    cfg.params = benchutil::sized_params(ranks, interval, 4, 1_ms, 8_KiB);
    cfg.protocol.fixed_interval = interval;
    cfg.shards = opt.shards;
    return cfg;
  };
  const auto flow_of = [](core::StudyConfig cfg) {
    cfg.network.mode = core::NetworkMode::kFlow;
    return cfg;
  };

  {
    const core::FabricPlan plan =
        core::plan_fabric(machine, scales.back(), core::FlowSpec{});
    std::cout << "machine=" << machine.name << " interval=10ms duty="
              << benchutil::pct(duty) << " pfs_bw="
              << benchutil::fixed(machine.pfs_bw_bytes_per_s / 1e9, 0)
              << " GB/s fabric=" << net::flow::to_string(plan.router.kind)
              << " gateways(top scale)=" << plan.router.gateways << "\n\n";
  }

  // ------------------------------------------------------------------
  // 1) Protocol crossover vs scale, analytic vs flow (the E12 re-ask).
  // ------------------------------------------------------------------
  struct ProtoCase {
    const char* name;
    ckpt::ProtocolKind kind;
  };
  const std::vector<ProtoCase> protos = {
      {"coordinated", ckpt::ProtocolKind::kCoordinated},
      {"uncoordinated+log", ckpt::ProtocolKind::kUncoordinated},
      {"hierarchical(c=64)+log", ckpt::ProtocolKind::kHierarchical},
  };
  std::vector<core::StudyConfig> cells;
  for (const int ranks : scales) {
    for (const ProtoCase& pc : protos) {
      core::StudyConfig cfg = base_config(ranks, "halo3d");
      cfg.protocol.kind = pc.kind;
      cfg.protocol.cluster_size = 64;
      if (pc.kind != ckpt::ProtocolKind::kCoordinated)
        cfg.protocol.log_per_message = 2_us;
      cells.push_back(cfg);            // analytic
      cells.push_back(flow_of(cfg));   // flow
    }
  }
  const std::vector<core::Breakdown> xr = core::run_sweep(cells, opt.jobs);

  Table t({"ranks", "protocol", "network", "slowdown", "efficiency",
           "propagation", "fabric_contention", "io_bursts"});
  // efficiency[scale][proto][mode]
  std::vector<std::vector<std::array<double, 2>>> eff(
      scales.size(), std::vector<std::array<double, 2>>(protos.size()));
  for (std::size_t i = 0; i < xr.size(); ++i) {
    const core::Breakdown& b = xr[i];
    const std::size_t scale_i = i / (2 * protos.size());
    const std::size_t proto_i = (i / 2) % protos.size();
    const std::size_t mode_i = i % 2;
    eff[scale_i][proto_i][mode_i] = 1.0 / b.slowdown;
    t.row() << std::int64_t{b.ranks} << protos[proto_i].name << b.network
            << benchutil::fixed(b.slowdown, 4)
            << benchutil::pct(1.0 / b.slowdown)
            << benchutil::fixed(b.propagation_factor, 2)
            << units::format_time(b.fabric.contention_ns)
            << std::int64_t{b.io_bursts};
  }
  std::cout << t.to_ascii() << "\n";

  // The crossover statement: first scale (if any) at which the spreading
  // protocol beats coordinated, per network model.
  for (std::size_t p = 1; p < protos.size(); ++p) {
    for (std::size_t m = 0; m < 2; ++m) {
      std::string at = "not reached";
      for (std::size_t s = 0; s < scales.size(); ++s) {
        if (eff[s][p][m] > eff[s][0][m]) {
          at = std::to_string(scales[s]) + " ranks";
          break;
        }
      }
      std::cout << "crossover[" << protos[p].name << " > coordinated, "
                << (m == 0 ? "analytic" : "flow") << "]: " << at << "\n";
    }
  }
  std::cout << "\n";

  // ------------------------------------------------------------------
  // 2) Burst-buffer drain vs halo traffic (the E8 re-ask).
  // ------------------------------------------------------------------
  {
    const int ranks = scales[1];
    core::StudyConfig cfg = base_config(ranks, "halo3d");
    cfg.protocol.kind = ckpt::ProtocolKind::kCoordinated;
    cfg.protocol.tier = storage::StorageTier::kBurstBuffer;
    cfg.machine.bb_bw_bytes_per_s = 8e9;
    const std::vector<core::Breakdown> bb =
        core::run_sweep({cfg, flow_of(cfg)}, opt.jobs);
    Table bt({"network", "slowdown", "blackout", "drain_flows",
              "storage_bytes", "fabric_contention"});
    for (const core::Breakdown& b : bb)
      bt.row() << b.network << benchutil::fixed(b.slowdown, 4)
               << units::format_time(b.blackout)
               << std::int64_t{b.fabric.io_flows}
               << units::format_bytes(b.fabric.storage_bytes)
               << units::format_time(b.fabric.contention_ns);
    std::cout << "burst-buffer drain vs halo traffic (" << ranks
              << " ranks, bb_bw=8 GB/s):\n"
              << bt.to_ascii();
    std::cout << "verdict[bb-drain]: analytic books the drain as free; flow "
                 "mode charges the halo exchange "
              << benchutil::fixed((bb[1].slowdown / bb[0].slowdown - 1) * 100, 2)
              << "% extra slowdown for sharing links with it\n\n";
  }

  // ------------------------------------------------------------------
  // 3) Logging traffic vs collectives (the E4/E11 tax, re-asked).
  // ------------------------------------------------------------------
  {
    const int ranks = scales[1];
    std::vector<core::StudyConfig> lg;
    for (const TimeNs tax : {TimeNs{0}, TimeNs{50_us}}) {
      core::StudyConfig cfg = base_config(ranks, "hpccg");
      cfg.protocol.kind = ckpt::ProtocolKind::kUncoordinated;
      cfg.protocol.log_per_message = tax;
      lg.push_back(cfg);
      lg.push_back(flow_of(cfg));
    }
    const std::vector<core::Breakdown> lr = core::run_sweep(lg, opt.jobs);
    Table lt({"log_tax", "network", "slowdown", "propagation",
              "fabric_contention"});
    for (std::size_t i = 0; i < lr.size(); ++i)
      lt.row() << (i < 2 ? "none" : "50us/msg") << lr[i].network
               << benchutil::fixed(lr[i].slowdown, 4)
               << benchutil::fixed(lr[i].propagation_factor, 2)
               << units::format_time(lr[i].fabric.contention_ns);
    std::cout << "logging tax on a collective-heavy workload (hpccg, " << ranks
              << " ranks, uncoordinated):\n"
              << lt.to_ascii();
    const double analytic_tax = lr[2].slowdown / lr[0].slowdown;
    const double flow_tax = lr[3].slowdown / lr[1].slowdown;
    std::cout << "verdict[logging]: the 50us/msg tax multiplies slowdown by "
              << benchutil::fixed(analytic_tax, 4) << " (analytic) vs "
              << benchutil::fixed(flow_tax, 4)
              << " (flow) — contended collectives "
              << (flow_tax > analytic_tax ? "amplify" : "absorb")
              << " the logging traffic\n\n";
  }

  // ------------------------------------------------------------------
  // 4) Topology-aware staggering: cluster size = placement-block stagger.
  // ------------------------------------------------------------------
  {
    const int ranks = scales.back();
    std::vector<core::StudyConfig> st;
    const std::vector<int> clusters = {16, 64, std::min(256, ranks)};
    for (const int c : clusters) {
      core::StudyConfig cfg = base_config(ranks, "halo3d");
      cfg.protocol.kind = ckpt::ProtocolKind::kHierarchical;
      cfg.protocol.cluster_size = c;
      cfg.protocol.log_per_message = 2_us;
      st.push_back(cfg);
      st.push_back(flow_of(cfg));
    }
    const std::vector<core::Breakdown> sr = core::run_sweep(st, opt.jobs);
    Table stt({"cluster", "network", "slowdown", "efficiency", "propagation",
               "fabric_contention"});
    for (std::size_t i = 0; i < sr.size(); ++i)
      stt.row() << std::int64_t{clusters[i / 2]} << sr[i].network
                << benchutil::fixed(sr[i].slowdown, 4)
                << benchutil::pct(1.0 / sr[i].slowdown)
                << benchutil::fixed(sr[i].propagation_factor, 2)
                << units::format_time(sr[i].fabric.contention_ns);
    std::cout << "stagger-by-placement (hierarchical cluster sweep, " << ranks
              << " ranks — clusters are contiguous fabric blocks with "
                 "per-cluster phases):\n"
              << stt.to_ascii();
    // Best cluster per mode: where placement staggering pays off.
    for (std::size_t m = 0; m < 2; ++m) {
      std::size_t best = m;
      for (std::size_t i = m; i < sr.size(); i += 2)
        if (sr[i].slowdown < sr[best].slowdown) best = i;
      std::cout << "verdict[stagger-" << (m == 0 ? "analytic" : "flow")
                << "]: best cluster " << clusters[best / 2] << " at slowdown "
                << benchutil::fixed(sr[best].slowdown, 4) << "\n";
    }
  }

  // Focus cell for --critical-path-out: the top-scale coordinated flow
  // cell — the run whose waits the network_contention category explains.
  core::StudyConfig focus = base_config(scales.back(), "halo3d");
  focus.protocol.kind = ckpt::ProtocolKind::kCoordinated;
  benchutil::write_focus_critical_path(opt, flow_of(focus));
  return 0;
}
